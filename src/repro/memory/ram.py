"""Behavioural RAM with the figure-2 structure.

Cell array + row decoder + column MUX + data register.  The array and MUX
are behavioural (cycle-level functional model); the decoders are
*optional* gate-level :class:`~repro.decoder.tree.DecoderTree` instances
when the RAM is wrapped by the self-checking scheme — here the plain RAM
resolves addresses arithmetically and applies behavioural faults, serving
as the substrate under both the protected and the unprotected baselines.

A read returns the stored word after every registered
:class:`~repro.memory.faults.MemoryFault` has had its say; an optional
parity bit (one per word, as in §II) is maintained transparently on
writes and returned alongside the data so the caller's checker can judge
it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.codes.parity import ParityCode
from repro.memory.faults import MemoryFault
from repro.memory.organization import MemoryOrganization

__all__ = ["BehavioralRAM"]


class BehavioralRAM:
    """Word-addressable RAM with parity and behavioural fault injection.

    >>> ram = BehavioralRAM(MemoryOrganization(64, 8, column_mux=4))
    >>> ram.write(5, (1, 0, 1, 1, 0, 0, 1, 0))
    >>> ram.read(5)[:8]
    (1, 0, 1, 1, 0, 0, 1, 0)
    """

    def __init__(
        self,
        organization: MemoryOrganization,
        with_parity: bool = True,
        even_parity: bool = True,
    ):
        self.organization = organization
        self.with_parity = with_parity
        self.parity_code: Optional[ParityCode] = (
            ParityCode(organization.bits, even=even_parity)
            if with_parity
            else None
        )
        stored_bits = organization.bits + (1 if with_parity else 0)
        self._stored_bits = stored_bits
        self._array: List[List[int]] = [
            [0] * stored_bits for _ in range(organization.words)
        ]
        if with_parity:
            # All-zero data has parity bit 0 (even) / 1 (odd): initialise.
            init = self.parity_code.parity_bit((0,) * organization.bits)
            for word in self._array:
                word[-1] = init
        self.faults: List[MemoryFault] = []

    def __repr__(self) -> str:
        return (
            f"BehavioralRAM({self.organization.label()}, "
            f"parity={self.with_parity}, faults={len(self.faults)})"
        )

    @property
    def word_width(self) -> int:
        """Bits returned by a read (data + parity when enabled)."""
        return self._stored_bits

    # -- fault management ------------------------------------------------------

    def inject(self, fault: MemoryFault) -> None:
        """Register a behavioural fault for subsequent accesses."""
        self.faults.append(fault)

    def clear_faults(self) -> None:
        self.faults.clear()

    # -- accesses ----------------------------------------------------------------

    def write(self, address: int, data: Sequence[int]) -> None:
        """Store a data word (parity bit computed and stored alongside)."""
        self._check_address(address)
        data = tuple(data)
        if len(data) != self.organization.bits:
            raise ValueError(
                f"expected {self.organization.bits} data bits, "
                f"got {len(data)}"
            )
        stored = list(data)
        if self.with_parity:
            stored.append(self.parity_code.parity_bit(data))
        for fault in self.faults:
            fault.apply_write(address, stored, self)
        self._array[address] = stored

    def read(self, address: int) -> Tuple[int, ...]:
        """Read the stored word (data + parity), faults applied."""
        self._check_address(address)
        word = list(self._array[address])
        for fault in self.faults:
            fault.apply_read(address, word, self)
        return tuple(word)

    def read_data(self, address: int) -> Tuple[int, ...]:
        """Data bits only (parity stripped)."""
        word = self.read(address)
        return word[: self.organization.bits]

    def raw_word(self, address: int) -> Tuple[int, ...]:
        """Fault-free stored contents (used by coupling-fault models)."""
        self._check_address(address)
        return tuple(self._array[address])

    def force_stored_bit(self, address: int, bit: int, value: int) -> None:
        """Overwrite one stored bit in place, bypassing parity.

        The write-triggered coupling model's corruption primitive: like
        :meth:`flip_stored_bit` the parity bit is *not* recomputed, since
        the corruption happens behind the write path's back.
        """
        self._check_address(address)
        if not 0 <= bit < self._stored_bits:
            raise ValueError(
                f"bit {bit} out of range [0, {self._stored_bits})"
            )
        if value not in (0, 1):
            raise ValueError(f"stored bit must be 0/1, got {value!r}")
        self._array[address][bit] = value

    def flip_stored_bit(self, address: int, bit: int) -> None:
        """Flip one stored bit in place — a single-event upset.

        Unlike :meth:`write` this does *not* recompute the parity bit:
        the whole point of an upset is that the stored word leaves the
        code.  Used by :mod:`repro.faultsim.transient`.
        """
        self._check_address(address)
        if not 0 <= bit < self._stored_bits:
            raise ValueError(
                f"bit {bit} out of range [0, {self._stored_bits})"
            )
        self._array[address][bit] ^= 1

    def parity_ok(self, address: int) -> bool:
        """Does the (possibly faulty) read satisfy the parity code?"""
        if not self.with_parity:
            raise RuntimeError("RAM built without parity")
        return self.parity_code.is_codeword(self.read(address))

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.organization.words:
            raise ValueError(
                f"address {address} out of range "
                f"[0, {self.organization.words})"
            )
