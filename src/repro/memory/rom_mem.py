"""Behavioural ROM — "other memory types" of §IV.

Identical read path to the RAM (so the same decoder-checking scheme and
the same fault models apply) but with contents fixed at construction and
no write port.  The paper notes the trade-off transfers unchanged to
ROMs, CAMs etc.; the structure benchmark instantiates a self-checking ROM
to demonstrate it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.codes.parity import ParityCode
from repro.memory.faults import MemoryFault
from repro.memory.organization import MemoryOrganization

__all__ = ["BehavioralROM"]


class BehavioralROM:
    """Read-only memory with parity and behavioural fault injection."""

    def __init__(
        self,
        organization: MemoryOrganization,
        contents: Sequence[Sequence[int]],
        with_parity: bool = True,
    ):
        if len(contents) != organization.words:
            raise ValueError(
                f"expected {organization.words} words of contents, "
                f"got {len(contents)}"
            )
        self.organization = organization
        self.with_parity = with_parity
        self.parity_code = (
            ParityCode(organization.bits) if with_parity else None
        )
        self._array: List[Tuple[int, ...]] = []
        for word in contents:
            word = tuple(word)
            if len(word) != organization.bits:
                raise ValueError(
                    f"ROM word must have {organization.bits} bits, "
                    f"got {len(word)}"
                )
            if with_parity:
                word = word + (self.parity_code.parity_bit(word),)
            self._array.append(word)
        self.faults: List[MemoryFault] = []

    def __repr__(self) -> str:
        return f"BehavioralROM({self.organization.label()})"

    @property
    def word_width(self) -> int:
        return self.organization.bits + (1 if self.with_parity else 0)

    def inject(self, fault: MemoryFault) -> None:
        self.faults.append(fault)

    def clear_faults(self) -> None:
        self.faults.clear()

    def read(self, address: int) -> Tuple[int, ...]:
        if not 0 <= address < self.organization.words:
            raise ValueError(
                f"address {address} out of range "
                f"[0, {self.organization.words})"
            )
        word = list(self._array[address])
        for fault in self.faults:
            fault.apply_read(address, word, self)
        return tuple(word)

    def raw_word(self, address: int) -> Tuple[int, ...]:
        return self._array[address]

    def parity_ok(self, address: int) -> bool:
        if not self.with_parity:
            raise RuntimeError("ROM built without parity")
        return self.parity_code.is_codeword(self.read(address))
