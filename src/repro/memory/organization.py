"""Physical memory organisation: words, bits, column multiplexing.

The paper's area formula (§IV) is phrased in terms of a RAM with ``m``-bit
words, a row decoder with ``p`` inputs (2^p outputs = word lines) and a
column decoder with ``s`` inputs (2^s outputs, one per mux way), with
``n = p + s`` address lines.  The cell array is then ``2^p`` rows by
``m * 2^s`` columns.  This class derives (p, s) from the designer-facing
parameters (word count, word width, column-mux factor) and carries them to
the area model and the scheme builder.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryOrganization", "PAPER_ORGS", "paper_org"]


def _log2_exact(value: int, what: str) -> int:
    if value < 1 or value & (value - 1):
        raise ValueError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class MemoryOrganization:
    """Word-oriented RAM organisation.

    >>> org = MemoryOrganization(words=1024, bits=16, column_mux=8)
    >>> org.n, org.p, org.s
    (10, 7, 3)
    >>> org.rows, org.array_columns
    (128, 128)
    """

    words: int
    bits: int
    column_mux: int = 8

    def __post_init__(self):
        n = _log2_exact(self.words, "word count")
        s = _log2_exact(self.column_mux, "column mux factor")
        if self.bits < 1:
            raise ValueError(f"word width must be >= 1, got {self.bits}")
        if s >= n:
            raise ValueError(
                f"mux factor {self.column_mux} consumes every address bit "
                f"of a {self.words}-word memory"
            )

    @property
    def n(self) -> int:
        """Total address bits."""
        return _log2_exact(self.words, "word count")

    @property
    def s(self) -> int:
        """Column-decoder address bits (mux select)."""
        return _log2_exact(self.column_mux, "column mux factor")

    @property
    def p(self) -> int:
        """Row-decoder address bits."""
        return self.n - self.s

    @property
    def rows(self) -> int:
        return 1 << self.p

    @property
    def columns_per_bit(self) -> int:
        return self.column_mux

    @property
    def array_columns(self) -> int:
        return self.bits * self.column_mux

    @property
    def capacity_bits(self) -> int:
        return self.words * self.bits

    def split_address(self, address: int) -> tuple:
        """(row, column) for an address: low ``s`` bits select the mux way.

        >>> MemoryOrganization(1024, 16, 8).split_address(0b1010110_101)
        (86, 5)
        """
        if not 0 <= address < self.words:
            raise ValueError(
                f"address {address} out of range [0, {self.words})"
            )
        return address >> self.s, address & (self.column_mux - 1)

    def join_address(self, row: int, column: int) -> int:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} out of range [0, {self.rows})")
        if not 0 <= column < self.column_mux:
            raise ValueError(
                f"column {column} out of range [0, {self.column_mux})"
            )
        return (row << self.s) | column

    def label(self) -> str:
        """Paper-style size label, e.g. ``'16x2K'``."""
        if self.words % 1024 == 0:
            return f"{self.bits}x{self.words // 1024}K"
        return f"{self.bits}x{self.words}"


#: The three embedded-RAM sizes evaluated in §IV (AT&T 0.4um std-cell
#: RAMs), all with the 1-out-of-8 column multiplexing of the §IV example.
PAPER_ORGS = (
    MemoryOrganization(words=2048, bits=16, column_mux=8),
    MemoryOrganization(words=4096, bits=32, column_mux=8),
    MemoryOrganization(words=8192, bits=64, column_mux=8),
)


def paper_org(label: str) -> MemoryOrganization:
    """Look up one of the paper's RAM sizes by its table label.

    >>> paper_org('16x2K').words
    2048
    """
    for org in PAPER_ORGS:
        if org.label() == label:
            return org
    raise KeyError(
        f"unknown paper organisation {label!r}; "
        f"known: {[o.label() for o in PAPER_ORGS]}"
    )
