"""`FaultScenario` — one vocabulary spanning every fault model.

Pre-1.3 the fault models lived in three unconnected worlds: structural
stuck-ats (:mod:`repro.circuits.faults`) fed the decoder campaigns,
behavioural :class:`~repro.memory.faults.MemoryFault`\\ s fed the scheme
campaigns and march runs, and transient upsets had their own bespoke
driver.  A :class:`FaultScenario` wraps any of them (including
multi-fault combinations) so the one
:class:`~repro.scenarios.engine.CampaignEngine` can route each to the
right backend — and so heterogeneous fault lists can travel through one
campaign call.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union

from repro.circuits.faults import FaultBase
from repro.faultsim.transient import TransientUpset
from repro.memory.faults import MemoryFault

__all__ = [
    "FaultScenario",
    "StructuralScenario",
    "MemoryScenario",
    "TransientScenario",
    "as_scenarios",
]

#: anything :func:`as_scenarios` can normalise
ScenarioLike = Union["FaultScenario", FaultBase, MemoryFault, TransientUpset]


class FaultScenario(abc.ABC):
    """One injectable fault situation, engine-agnostic."""

    #: coarse routing family: 'structural' | 'memory' | 'transient'
    kind: str = "scenario"

    @abc.abstractmethod
    def describe(self) -> str:
        """Human identity for reports and logs."""


@dataclass(frozen=True)
class StructuralScenario(FaultScenario):
    """A gate-level stuck-at (net or pin) on one decoder axis.

    ``axis`` routes the fault in scheme campaigns: ``"row"`` or
    ``"column"``.  Decoder-only campaigns ignore it.
    """

    fault: FaultBase
    axis: str = "row"

    kind = "structural"

    def __post_init__(self):
        if self.axis not in ("row", "column"):
            raise ValueError(
                f"axis must be 'row' or 'column', got {self.axis!r}"
            )

    def describe(self) -> str:
        return f"{self.axis}:{self.fault!r}"


@dataclass(frozen=True)
class MemoryScenario(FaultScenario):
    """One or more behavioural memory faults active together.

    A single fault is the common case; several faults make a multi-fault
    combination (applied in order, as
    :class:`repro.memory.faults.CompositeFault` does).
    """

    faults: Tuple[MemoryFault, ...]

    kind = "memory"

    def __post_init__(self):
        if isinstance(self.faults, MemoryFault):
            object.__setattr__(self, "faults", (self.faults,))
        else:
            object.__setattr__(self, "faults", tuple(self.faults))
        if not self.faults:
            raise ValueError("a memory scenario needs at least one fault")

    @property
    def fault(self) -> MemoryFault:
        """The single underlying fault, or a composite over several."""
        if len(self.faults) == 1:
            return self.faults[0]
        from repro.memory.faults import CompositeFault

        return CompositeFault(self.faults)

    def describe(self) -> str:
        return "+".join(repr(f) for f in self.faults)


@dataclass(frozen=True)
class TransientScenario(FaultScenario):
    """One or more single-event upsets, each striking at its own cycle.

    Multi-upset scenarios are where the packed engine's time-varying
    lane masks earn their keep — e.g. two flips in one word restoring
    parity (``first_error`` set, ``first_detection`` ``None``).
    """

    upsets: Tuple[TransientUpset, ...]

    kind = "transient"

    def __post_init__(self):
        if isinstance(self.upsets, TransientUpset):
            object.__setattr__(self, "upsets", (self.upsets,))
        else:
            object.__setattr__(self, "upsets", tuple(self.upsets))
        if not self.upsets:
            raise ValueError("a transient scenario needs at least one upset")

    @classmethod
    def single(
        cls, address: int, bit: int, cycle: int
    ) -> "TransientScenario":
        return cls(upsets=(TransientUpset(address, bit, cycle),))

    @property
    def cycle(self) -> int:
        """Earliest strike cycle (the scenario's onset)."""
        return min(upset.cycle for upset in self.upsets)

    @property
    def addresses(self) -> Tuple[int, ...]:
        return tuple(sorted({upset.address for upset in self.upsets}))

    def describe(self) -> str:
        return "+".join(
            f"SEU(a{u.address}.b{u.bit}@c{u.cycle})" for u in self.upsets
        )


def as_scenarios(
    items: Iterable[ScenarioLike], axis: str = "row"
) -> List[FaultScenario]:
    """Normalise a heterogeneous fault list into scenarios.

    Bare :class:`FaultBase` faults become row-axis structural scenarios
    (``axis=`` overrides), bare memory faults and upsets get their
    natural wrapper, and existing scenarios pass through untouched.
    """
    scenarios: List[FaultScenario] = []
    for item in items:
        if isinstance(item, FaultScenario):
            scenarios.append(item)
        elif isinstance(item, FaultBase):
            scenarios.append(StructuralScenario(fault=item, axis=axis))
        elif isinstance(item, MemoryFault):
            scenarios.append(MemoryScenario(faults=(item,)))
        elif isinstance(item, TransientUpset):
            scenarios.append(TransientScenario(upsets=(item,)))
        else:
            raise TypeError(
                f"cannot interpret {item!r} as a fault scenario"
            )
    return scenarios
