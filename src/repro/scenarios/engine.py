"""`CampaignEngine` — one facade, every campaign, both backends.

The unified driver over the scenario vocabulary: decoder and scheme
campaigns delegate to :mod:`repro.faultsim` (packed PPSFP engine /
serial oracle, unchanged semantics), while **transient** and **march**
campaigns — serial-only before 1.3 — gain first-class packed backends
here:

* *Transient upsets as time-varying lane masks.*  With lane ``k`` =
  cycle ``k``, an upset at cycle ``c`` is an XOR mask on the lanes
  ``>= c`` of its victim word.  Per victim address the engine walks the
  sparse event list (upsets toggling bits, workload writes resetting the
  word) and emits, per constant-state segment, two lane words:
  erroneous-read lanes (victim reads while any flip is live) and
  detected lanes (victim reads while the flipped word is outside the
  parity code).  ``first_error``/``first_detection`` fall out as lowest
  set bits — no per-cycle simulation, and multi-upset scenarios whose
  second flip restores parity are costed exactly (error without
  detection).

* *March sequences as packed read/write lane streams.*  A march test
  compiles (via :class:`~repro.scenarios.workload.MarchWorkload`) into
  per-background read masks, per-address read occupancy words and
  sparse per-address event lists; each built-in behavioural fault class
  then resolves to a handful of word operations (e.g. a cell stuck-at
  ``v`` violates exactly the victim's reads expecting ``1-v``).
  Unknown fault classes fall back to the serial replay, so the facade
  is total.

Both packed paths are proven bit-identical to the serial oracle
record-by-record; the serial loops remain the reference semantics.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.faultsim.fastsim import _map_jobs
from repro.faultsim.results import CampaignResult, FaultRecord
from repro.faultsim.transient import TransientUpset
from repro.circuits.parallel import first_set_lane
from repro.faultsim.vectorsim import resolve_engine
from repro.results import (
    Provenance,
    ResultStore,
    campaign_key,
    canonical_json,
    content_digest,
    describe_target,
    fault_id,
    scenario_material,
    workload_material,
)
from repro.memory.faults import (
    CellStuckAt,
    CouplingFault,
    DataLineStuckAt,
    MemoryFault,
    MuxLineStuckAt,
)
from repro.memory.march import MarchTest
from repro.memory.ram import BehavioralRAM
from repro.scenarios.faults import (
    MemoryScenario,
    StructuralScenario,
    TransientScenario,
    as_scenarios,
)
from repro.scenarios.workload import Access, Workload, as_workload

__all__ = ["CampaignEngine"]


# -- shared helpers ----------------------------------------------------------


def _fill_zero(ram: BehavioralRAM) -> None:
    """Fault-free all-zero preparation — every stored word a code word."""
    zero = (0,) * ram.organization.bits
    for address in range(ram.organization.words):
        ram.write(address, zero)


def _background_words(ram: BehavioralRAM) -> Dict[int, Tuple[int, ...]]:
    """Stored word (data + parity when enabled) per background bit."""
    words: Dict[int, Tuple[int, ...]] = {}
    for bit in (0, 1):
        data = [bit] * ram.organization.bits
        if ram.with_parity:
            data.append(ram.parity_code.parity_bit(tuple(data[:])))
        words[bit] = tuple(data)
    return words


def _lane_range(lo: int, hi: int) -> int:
    """Lane word with bits [lo, hi) set (clamped at 0)."""
    if hi <= lo:
        return 0
    return ((1 << hi) - 1) ^ ((1 << lo) - 1) if lo > 0 else (1 << hi) - 1


# -- transient backend -------------------------------------------------------


def _require_fault_free(ram: BehavioralRAM, campaign: str) -> None:
    """Campaigns own the RAM's fault state: a pre-injected behavioural
    fault would be honoured by the serial replay but not by the packed
    lane algebra — refuse rather than silently diverge."""
    if ram.faults:
        raise ValueError(
            f"{campaign} campaign needs a fault-free RAM "
            f"({len(ram.faults)} behavioural fault(s) injected; call "
            f"clear_faults() and pass faults as scenarios instead)"
        )


def _validate_transient(
    ram: BehavioralRAM, scenarios: Sequence[TransientScenario]
) -> None:
    _require_fault_free(ram, "transient")
    if not ram.with_parity:
        raise ValueError("transient campaign needs a parity-protected RAM")
    words = ram.organization.words
    stored_bits = ram.word_width
    for scenario in scenarios:
        for upset in scenario.upsets:
            if not 0 <= upset.address < words:
                raise ValueError(
                    f"upset address {upset.address} out of range"
                )
            if not 0 <= upset.bit < stored_bits:
                raise ValueError(
                    f"upset bit {upset.bit} out of range [0, {stored_bits})"
                )


def _transient_serial_one(
    ram: BehavioralRAM,
    scenario: TransientScenario,
    accesses: Iterable[Access],
    backgrounds: Dict[int, Tuple[int, ...]],
) -> Tuple[Optional[int], Optional[int]]:
    """(first_error, first_detection) by per-cycle replay — the oracle.

    Starts from a fault-free all-zero fill; a golden shadow of the
    stored contents tells erroneous reads (observed != fault-free) apart
    from detected ones (observed outside the parity code).
    """
    _fill_zero(ram)
    golden: Dict[int, Tuple[int, ...]] = {}
    pending = sorted(scenario.upsets, key=lambda u: u.cycle)
    pointer = 0
    first_error: Optional[int] = None
    first_detection: Optional[int] = None
    zero_word = backgrounds[0]
    for lane, access in enumerate(accesses):
        while pointer < len(pending) and pending[pointer].cycle <= lane:
            upset = pending[pointer]
            ram.flip_stored_bit(upset.address, upset.bit)
            pointer += 1
        if access.is_write:
            data = (access.bit,) * ram.organization.bits
            ram.write(access.address, data)
            golden[access.address] = backgrounds[access.bit]
            continue
        word = ram.read(access.address)
        if first_error is None and word != golden.get(
            access.address, zero_word
        ):
            first_error = lane
        if not ram.parity_code.is_codeword(word):
            first_detection = lane
            break
    return first_error, first_detection


class _TransientPackedState:
    """Per-victim walker state carried across lane windows."""

    __slots__ = ("flips", "base", "pending", "pointer")

    def __init__(self, base: Tuple[int, ...], upsets: List[TransientUpset]):
        self.flips: set = set()
        self.base = base
        self.pending = sorted(upsets, key=lambda u: u.cycle)
        self.pointer = 0


def _transient_packed_scan(
    scenario: TransientScenario,
    states: Dict[int, _TransientPackedState],
    occ_read: Dict[int, int],
    writes: Dict[int, List[Tuple[int, int]]],
    window: int,
    offset: int,
    backgrounds: Dict[int, Tuple[int, ...]],
    parity_code,
    codeword_cache: Dict[Tuple[Tuple[int, ...], frozenset], bool],
) -> Tuple[int, int]:
    """(err_word, det_word) for one W-lane window of one scenario.

    Events — upsets (bit toggles, effective at their own lane) and
    workload writes (word resets, effective after their lane) — cut the
    window into constant-state segments per victim; each live segment
    contributes its victim-read lanes to ``err`` and, when the flipped
    word leaves the parity code, to ``det``.
    """
    err = det = 0
    for address, state in states.items():
        occupancy = occ_read.get(address, 0)
        events: List[Tuple[int, int, Optional[int]]] = []
        while (
            state.pointer < len(state.pending)
            and state.pending[state.pointer].cycle < offset + window
        ):
            upset = state.pending[state.pointer]
            events.append((max(upset.cycle - offset, 0), 0, upset.bit))
            state.pointer += 1
        for lane, background in writes.get(address, ()):
            events.append((lane, 1, background))
        # upsets strike before the same lane's access; writes take
        # effect after their own lane — the sort key encodes both.
        # A final sentinel closes the last live segment of the window.
        events.sort(key=lambda event: (event[0], event[1]))
        events.append((window, 2, None))
        segment_start = 0
        for lane, event_kind, payload in events:
            boundary = lane if event_kind == 0 else lane + 1
            boundary = min(boundary, window)
            if state.flips and boundary > segment_start:
                lanes = occupancy & _lane_range(segment_start, boundary)
                if lanes:
                    err |= lanes
                    cache_key = (state.base, frozenset(state.flips))
                    is_code = codeword_cache.get(cache_key)
                    if is_code is None:
                        word = list(state.base)
                        for bit in state.flips:
                            word[bit] ^= 1
                        is_code = parity_code.is_codeword(tuple(word))
                        codeword_cache[cache_key] = is_code
                    if not is_code:
                        det |= lanes
            segment_start = max(segment_start, boundary)
            if event_kind == 0:
                state.flips.symmetric_difference_update((payload,))
            elif event_kind == 1:
                state.flips.clear()
                state.base = backgrounds[payload]
    return err, det


def _transient_worker(payload):
    """One shard of transient scenarios against one workload."""
    (ram, workload, engine, chunk), scenarios = payload
    backgrounds = _background_words(ram)
    if engine == "serial":
        out = []
        for scenario in scenarios:
            accesses = workload.accesses()
            out.append(
                _transient_serial_one(ram, scenario, accesses, backgrounds)
            )
        if scenarios:
            # leave no stray flips behind: the RAM ends in the same
            # documented all-zero state every scenario started from
            _fill_zero(ram)
        return out

    window_size = chunk if chunk is not None else max(len(workload), 1)
    victim_set = {u.address for s in scenarios for u in s.upsets}
    states = [
        {
            address: _TransientPackedState(
                backgrounds[0],
                [u for u in scenario.upsets if u.address == address],
            )
            for address in scenario.addresses
        }
        for scenario in scenarios
    ]
    outcomes: List[List[Optional[int]]] = [
        [None, None] for _ in scenarios
    ]
    active = list(range(len(scenarios)))
    codeword_cache: Dict[Tuple[Tuple[int, ...], frozenset], bool] = {}
    offset = 0
    for batch in workload.chunks(window_size):
        occ_read: Dict[int, int] = {}
        writes: Dict[int, List[Tuple[int, int]]] = {}
        for lane, access in enumerate(batch):
            if access.address not in victim_set:
                continue
            if access.is_read:
                occ_read[access.address] = occ_read.get(
                    access.address, 0
                ) | (1 << lane)
            else:
                writes.setdefault(access.address, []).append(
                    (lane, access.bit)
                )
        survivors = []
        for index in active:
            err, det = _transient_packed_scan(
                scenarios[index],
                states[index],
                occ_read,
                writes,
                len(batch),
                offset,
                backgrounds,
                ram.parity_code,
                codeword_cache,
            )
            if outcomes[index][0] is None:
                lane = first_set_lane(err)
                if lane is not None:
                    outcomes[index][0] = offset + lane
            lane = first_set_lane(det)
            if lane is not None:
                outcomes[index][1] = offset + lane
            else:
                survivors.append(index)
        active = survivors
        offset += len(batch)
        if not active:
            break
    return [tuple(outcome) for outcome in outcomes]


# -- march backend -----------------------------------------------------------


class _MarchContext:
    """One march trace compiled to packed lane structures.

    ``read_bg[b]`` — lanes reading background ``b``; ``occ_read[a]`` —
    lanes reading address ``a``; ``events[a]`` — sparse per-address
    (lane, op, bit) history.  ``regular`` is the fault-free invariant
    (every read sees its expected background); irregular traces fall
    back to serial replay wholesale, keeping the packed evaluators
    exact.
    """

    def __init__(self, ram: BehavioralRAM, accesses: List[Access]):
        self.ram = ram
        self.organization = ram.organization
        self.accesses = accesses
        self.backgrounds = _background_words(ram)
        bits = ram.organization.bits
        self.bits = bits
        self.read_bg = {0: 0, 1: 0}
        self.occ_read: Dict[int, int] = {}
        self.events: Dict[int, List[Tuple[int, str, int]]] = {}
        golden: Dict[int, int] = {}
        self.regular = True
        for lane, access in enumerate(accesses):
            self.events.setdefault(access.address, []).append(
                (lane, access.op, access.bit)
            )
            if access.is_write:
                golden[access.address] = access.bit
            else:
                self.read_bg[access.bit] |= 1 << lane
                self.occ_read[access.address] = self.occ_read.get(
                    access.address, 0
                ) | (1 << lane)
                if golden.get(access.address, 0) != access.bit:
                    self.regular = False
        self._column_masks: Dict[int, int] = {}

    def column_read_mask(self, column: int) -> int:
        mask = self._column_masks.get(column)
        if mask is None:
            mask = 0
            for address, occupancy in self.occ_read.items():
                if self.organization.split_address(address)[1] == column:
                    mask |= occupancy
            self._column_masks[column] = mask
        return mask

    def stored_bit(self, background: int, bit: int) -> int:
        return self.backgrounds[background][bit]


def _march_serial_one(
    ram: BehavioralRAM, fault: MemoryFault, accesses: List[Access]
) -> Optional[int]:
    """First violating read lane by full replay — the oracle (and the
    packed path's fallback for unknown fault classes)."""
    ram.clear_faults()
    _fill_zero(ram)
    ram.inject(fault)
    bits = ram.organization.bits
    try:
        for lane, access in enumerate(accesses):
            if access.is_write:
                ram.write(access.address, (access.bit,) * bits)
            else:
                expected = (access.bit,) * bits
                if ram.read_data(access.address) != expected:
                    return lane
        return None
    finally:
        ram.clear_faults()


def _march_cell_stuck(ctx: _MarchContext, fault: CellStuckAt) -> Optional[int]:
    if fault.bit >= ctx.bits:
        return None  # parity region: invisible to data compares
    lanes = ctx.occ_read.get(fault.address, 0) & ctx.read_bg[1 - fault.value]
    return first_set_lane(lanes)


def _march_data_line(
    ctx: _MarchContext, fault: DataLineStuckAt
) -> Optional[int]:
    if fault.bit >= ctx.bits:
        return None
    return first_set_lane(ctx.read_bg[1 - fault.value])


def _march_mux_line(ctx: _MarchContext, fault: MuxLineStuckAt) -> Optional[int]:
    if fault.bit >= ctx.bits:
        return None
    lanes = ctx.column_read_mask(fault.column) & ctx.read_bg[1 - fault.value]
    return first_set_lane(lanes)


def _march_read_coupling(
    ctx: _MarchContext, fault: CouplingFault
) -> Optional[int]:
    """Read-model coupling: victim reads are wrong exactly while the
    aggressor's stored bit holds the trigger (and the forced value
    differs from the read's background)."""
    if fault.victim_bit >= ctx.bits:
        return None
    total = len(ctx.accesses)
    trigger_mask = 0
    value = ctx.stored_bit(0, fault.aggressor_bit)  # all-zero preparation
    segment_start = 0
    for lane, op, bit in ctx.events.get(fault.aggressor_address, ()):
        if op != "w":
            continue
        new_value = ctx.stored_bit(bit, fault.aggressor_bit)
        if new_value != value:
            if value == fault.trigger:
                trigger_mask |= _lane_range(segment_start, lane)
            value = new_value
            segment_start = lane
    if value == fault.trigger:
        trigger_mask |= _lane_range(segment_start, total)
    lanes = (
        ctx.occ_read.get(fault.victim_address, 0)
        & trigger_mask
        & ctx.read_bg[1 - fault.forced]
    )
    return first_set_lane(lanes)


def _march_write_coupling(
    ctx: _MarchContext, fault: CouplingFault
) -> Optional[int]:
    """Write-triggered coupling: sparse walk over the merged aggressor /
    victim event history, tracking the victim's corrupted stored bit."""
    if fault.victim_bit >= ctx.bits:
        return None
    aggressor_value = ctx.stored_bit(0, fault.aggressor_bit)
    victim_value = ctx.stored_bit(0, fault.victim_bit)
    merged = sorted(
        [
            (lane, "a", op, bit)
            for lane, op, bit in ctx.events.get(fault.aggressor_address, ())
        ]
        + [
            (lane, "v", op, bit)
            for lane, op, bit in ctx.events.get(fault.victim_address, ())
        ]
    )
    for lane, cell, op, bit in merged:
        if cell == "a":
            if op == "w":
                new_value = ctx.stored_bit(bit, fault.aggressor_bit)
                if (
                    new_value == fault.trigger
                    and aggressor_value != fault.trigger
                ):
                    victim_value = fault.forced
                aggressor_value = new_value
        else:
            if op == "w":
                victim_value = ctx.stored_bit(bit, fault.victim_bit)
            elif victim_value != bit:
                return lane
    return None


def _march_packed_one(
    ctx: _MarchContext, fault: MemoryFault
) -> Optional[int]:
    if not ctx.regular:
        return _march_serial_one(ctx.ram, fault, ctx.accesses)
    if isinstance(fault, CellStuckAt):
        return _march_cell_stuck(ctx, fault)
    if isinstance(fault, DataLineStuckAt):
        return _march_data_line(ctx, fault)
    if isinstance(fault, MuxLineStuckAt):
        return _march_mux_line(ctx, fault)
    if isinstance(fault, CouplingFault):
        if fault.write_triggered:
            return _march_write_coupling(ctx, fault)
        return _march_read_coupling(ctx, fault)
    return _march_serial_one(ctx.ram, fault, ctx.accesses)


def _march_worker(payload):
    (ram, workload, engine), scenarios = payload
    accesses = list(workload.accesses())
    if engine == "serial":
        return [
            _march_serial_one(ram, scenario.fault, accesses)
            for scenario in scenarios
        ]
    ctx = _MarchContext(ram, accesses)
    return [_march_packed_one(ctx, scenario.fault) for scenario in scenarios]


# -- the facade --------------------------------------------------------------


class CampaignEngine:
    """One front door for every campaign family.

    Carries the execution policy and applies it across :meth:`decoder`,
    :meth:`scheme`, :meth:`transient` and :meth:`march` campaigns, all
    of which consume the same
    :class:`~repro.scenarios.workload.Workload` /
    :class:`~repro.scenarios.faults.FaultScenario` vocabulary:

    * ``engine`` — ``"packed"`` fast path, ``"vector"`` NumPy
      lane-array engine (optional ``repro[vector]`` extra), or
      ``"serial"`` bit-identity oracle; ``"auto"`` resolves to
      ``"vector"`` when NumPy is importable and falls back to
      ``"packed"`` otherwise (resolution happens here, at
      construction, so the stamped provenance names the engine that
      actually ran).  :meth:`transient` and :meth:`march` route
      ``"vector"`` through the packed lane algebra — their hot path is
      already whole-word, and results stay engine-invariant;
    * ``workers`` — process-pool sharding of the scenario list (every
      method);
    * ``collapse`` — structural equivalence classes (:meth:`decoder`
      and :meth:`scheme`, where structural faults occur);
    * ``chunk`` — bounded-memory lane windows (:meth:`decoder` and
      :meth:`transient`, plus :meth:`scheme` under the vector engine,
      the streaming backends; :meth:`march` ignores it — its packed
      path is already bounded by the compiled march length).

    Since 1.4 the engine also carries the **artifact policy**:

    * ``store`` — a :class:`repro.results.ResultStore` (or its root
      path).  Every campaign is keyed on the canonical hash of
      ``(target, scenarios, workload, engine-policy)``; identical
      re-runs are served from disk, hash-verified, without invoking the
      simulator.  With ``workers=N`` the scenario-list campaigns
      (:meth:`decoder`, :meth:`transient`, :meth:`march`) additionally
      checkpoint per shard, so an interrupted campaign resumes from its
      completed shards.  Results served from the store carry the
      printable fault identity (a string) in ``record.fault``.
    * ``cache`` — ``False`` skips the lookup but still refreshes the
      store entry (the CLI's ``--no-cache``).

    ``workers`` and ``chunk`` are excluded from the campaign key: both
    are proven result-invariant execution details.
    """

    def __init__(
        self,
        engine: str = "packed",
        collapse: bool = True,
        workers: Optional[int] = None,
        chunk: Optional[int] = None,
        store: Optional[Union[ResultStore, str]] = None,
        cache: bool = True,
    ):
        engine = resolve_engine(engine)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk is not None and chunk < 1:
            raise ValueError(f"chunk must be >= 1 lanes, got {chunk}")
        self.engine = engine
        self.collapse = collapse
        self.workers = workers
        self.chunk = chunk
        self.store = ResultStore.coerce(store)
        self.cache = cache

    def __repr__(self) -> str:
        return (
            f"CampaignEngine(engine={self.engine!r}, "
            f"collapse={self.collapse}, workers={self.workers}, "
            f"chunk={self.chunk}, store={self.store!r}, "
            f"cache={self.cache})"
        )

    # -- artifact policy -----------------------------------------------------

    def _material(
        self,
        family: str,
        target: dict,
        descriptions: Sequence[str],
        workload: Optional[Workload],
        extra: Optional[dict] = None,
    ) -> dict:
        """The canonical campaign-key material (see module docstring of
        :mod:`repro.results.store`)."""
        material = {
            "format": 1,
            "campaign": family,
            "target": target,
            "scenarios": scenario_material(descriptions),
            "workload": (
                workload_material(workload) if workload is not None else None
            ),
            "policy": {"engine": self.engine, "collapse": self.collapse},
        }
        if extra:
            material["extra"] = extra
        return material

    def _provenance(
        self,
        family: str,
        workload: Optional[Workload],
        scenario_count: int,
        material: Optional[dict] = None,
        key: Optional[str] = None,
        spec: Optional[dict] = None,
    ) -> Provenance:
        """The stamp every result carries.  The digest fields come from
        the key ``material`` and are only present on store-keyed runs —
        store-less campaigns skip the digest work entirely."""
        from repro import __version__

        workload_spec = None
        workload_label = None
        if workload is not None:
            workload_label = workload.label()
            as_dict = workload.to_dict()
            if len(canonical_json(as_dict)) <= 4096:
                workload_spec = as_dict
        scenario_digest = None
        target_digest = None
        if material is not None:
            scenario_digest = material["scenarios"]["digest"]
            target_digest = content_digest(
                canonical_json(material["target"])
            )
        return Provenance(
            campaign=family,
            engine=self.engine,
            collapse=self.collapse,
            workload=workload_label,
            workload_spec=workload_spec,
            scenario_count=scenario_count,
            scenario_digest=scenario_digest,
            target_digest=target_digest,
            spec=spec,
            repro_version=__version__,
            key=key,
        )

    def _execute(
        self,
        family: str,
        material_fn: Callable[[], dict],
        scenarios: List,
        runner: Callable[[List], CampaignResult],
        workload: Optional[Workload] = None,
        shardable: bool = False,
        spec: Optional[dict] = None,
        storable: bool = True,
    ) -> CampaignResult:
        """Run (or serve) one campaign under the artifact policy.

        ``runner(subset)`` simulates a scenario subset and returns its
        :class:`CampaignResult` in subset order — the contract the
        shard-resume path relies on.  ``material_fn`` builds the key
        material lazily: store-less runs never pay for target/scenario
        digests.
        """
        if self.store is None or not storable:
            result = runner(scenarios)
            result.provenance = self._provenance(
                family, workload, len(scenarios), spec=spec
            )
            return result
        material = material_fn()
        key = campaign_key(material)
        provenance = self._provenance(
            family, workload, len(scenarios),
            material=material, key=key, spec=spec,
        )
        if self.cache:
            cached = self.store.get(key)
            if cached is not None:
                view = cached.to_campaign()
                view.from_store = True
                return view
        if (
            shardable
            and self.workers is not None
            and self.workers > 1
            and len(scenarios) > 1
        ):
            result, shard_keys = self._run_sharded(
                family, material, scenarios, runner, workload, spec
            )
        else:
            result = runner(scenarios)
            shard_keys = []
        result.provenance = provenance
        result.store_key = key
        self.store.put(key, result.to_result_set(provenance), material)
        # the full entry supersedes the per-shard checkpoints — prune
        # them so the store holds one entry per completed campaign
        for shard_key in shard_keys:
            self.store.delete(shard_key)
        return result

    def _run_sharded(
        self,
        family: str,
        material: dict,
        scenarios: List,
        runner: Callable[[List], CampaignResult],
        workload: Optional[Workload],
        spec: Optional[dict],
    ) -> Tuple[CampaignResult, List[str]]:
        """Per-shard checkpointing: each of ``workers`` contiguous
        scenario shards is stored under its own sub-key as it completes,
        so a re-run after an interruption only simulates the shards that
        never finished.  Records come back through the serialised form
        uniformly, so resumed and fresh shards carry the same printable
        fault identity.
        """
        shard_count = min(self.workers, len(scenarios))
        base, remainder = divmod(len(scenarios), shard_count)
        shards: List[List] = []
        cursor = 0
        for index in range(shard_count):
            size = base + (1 if index < remainder else 0)
            shards.append(scenarios[cursor : cursor + size])
            cursor += size
        parts: List[CampaignResult] = []
        shard_keys: List[str] = []
        for index, shard in enumerate(shards):
            shard_material = dict(material)
            shard_material["shard"] = {"index": index, "of": shard_count}
            shard_key = campaign_key(shard_material)
            shard_keys.append(shard_key)
            cached = self.store.get(shard_key) if self.cache else None
            if cached is not None:
                parts.append(cached.to_campaign())
                continue
            part = runner(shard)
            shard_provenance = self._provenance(
                family, workload, len(shard),
                material=shard_material, key=shard_key, spec=spec,
            )
            shard_set = part.to_result_set(shard_provenance)
            self.store.put(shard_key, shard_set, shard_material)
            parts.append(shard_set.to_campaign())
        return (
            CampaignResult(
                records=[
                    record for part in parts for record in part.records
                ],
                cycles_simulated=parts[0].cycles_simulated,
                engine=self.engine,
            ),
            shard_keys,
        )

    # -- structural campaigns ------------------------------------------------

    def decoder(
        self,
        checked,
        checker,
        faults: Sequence,
        workload: Union[Workload, Sequence[int]],
        attach_analytic: bool = True,
        spec: Optional[dict] = None,
    ) -> CampaignResult:
        """Stuck-at campaign on a checked decoder (see
        :func:`repro.faultsim.campaign.decoder_campaign`).

        ``spec`` (a ``DesignSpec.to_dict()``) is stamped into the
        provenance when the campaign backs a design flow — it does not
        enter the campaign key (the built hardware already does).
        """
        from repro.faultsim.campaign import decoder_campaign

        workload = as_workload(workload)
        bare = [
            s.fault if isinstance(s, StructuralScenario) else s
            for s in faults
        ]

        def run(subset: List) -> CampaignResult:
            return decoder_campaign(
                checked,
                checker,
                subset,
                workload,
                attach_analytic=attach_analytic,
                engine=self.engine,
                collapse=self.collapse,
                workers=self.workers,
                chunk=self.chunk,
            )

        def material():
            return self._material(
                "decoder",
                {
                    "checked": describe_target(checked),
                    "checker": describe_target(checker),
                },
                [fault_id(fault) for fault in bare],
                workload,
                extra={"attach_analytic": attach_analytic},
            )

        return self._execute(
            "decoder", material, bare, run,
            workload=workload, shardable=True, spec=spec,
        )

    def scheme(
        self,
        memory,
        workload: Union[Workload, Sequence[int]],
        scenarios: Iterable = (),
        writer=None,
    ) -> CampaignResult:
        """End-to-end campaign on a self-checking memory, scenarios
        routed by kind (structural axis faults, behavioural memory
        faults) — see :func:`repro.faultsim.campaign.scheme_campaign`."""
        from repro.faultsim.campaign import scheme_campaign

        workload = as_workload(workload)
        row_scenarios: List[StructuralScenario] = []
        column_scenarios: List[StructuralScenario] = []
        memory_scenarios: List[MemoryScenario] = []
        for scenario in as_scenarios(scenarios):
            if isinstance(scenario, StructuralScenario):
                bucket = (
                    row_scenarios
                    if scenario.axis == "row"
                    else column_scenarios
                )
                bucket.append(scenario)
            elif isinstance(scenario, MemoryScenario):
                memory_scenarios.append(scenario)
            else:
                raise TypeError(
                    f"scheme campaigns take structural or memory "
                    f"scenarios, not {scenario.kind!r} "
                    f"(use CampaignEngine.transient for upsets)"
                )
        # record order is row -> column -> memory; key material and the
        # (unshardable) runner both speak that canonical order
        ordered = row_scenarios + column_scenarios + memory_scenarios

        def run(subset: List) -> CampaignResult:
            return scheme_campaign(
                memory,
                workload,
                row_faults=[
                    s.fault for s in subset
                    if isinstance(s, StructuralScenario) and s.axis == "row"
                ],
                column_faults=[
                    s.fault for s in subset
                    if isinstance(s, StructuralScenario)
                    and s.axis == "column"
                ],
                memory_faults=[
                    s.fault for s in subset
                    if isinstance(s, MemoryScenario)
                ],
                writer=writer,
                engine=self.engine,
                collapse=self.collapse,
                workers=self.workers,
                chunk=self.chunk,
            )

        def material():
            return self._material(
                "scheme",
                describe_target(memory),
                [scenario.describe() for scenario in ordered],
                workload,
            )

        # a custom writer changes memory contents in ways the key cannot
        # capture (it is an arbitrary callable) — never cache those runs
        return self._execute(
            "scheme", material, ordered, run,
            workload=workload, storable=writer is None,
        )

    # -- transient campaigns -------------------------------------------------

    def transient(
        self,
        ram: BehavioralRAM,
        scenarios: Iterable,
        workload: Union[Workload, Sequence[int]],
    ) -> CampaignResult:
        """Single-event-upset campaign on a parity-protected RAM.

        Per scenario the RAM starts as a fault-free all-zero fill; the
        workload then replays with each upset flipping its stored bit at
        its cycle (workload writes re-encode their word, clearing any
        live corruption).  ``first_error`` is the first read observing
        corrupt data, ``first_detection`` the first read the parity
        check flags — a gap between them is a parity escape (e.g. a
        double flip in one word).  Packed backend: time-varying lane
        masks (module docstring); serial: the per-cycle oracle.

        The campaign owns the RAM: pre-injected behavioural faults are
        refused (pass them as scenarios to :meth:`scheme`/:meth:`march`
        instead), and the contents are scratch — the serial replay
        leaves the array as the all-zero fill; the packed backend never
        touches it.
        """
        workload = as_workload(workload)
        normalized: List[TransientScenario] = []
        for scenario in as_scenarios(scenarios):
            if not isinstance(scenario, TransientScenario):
                raise TypeError(
                    f"transient campaigns take transient scenarios, "
                    f"not {scenario.kind!r}"
                )
            normalized.append(scenario)
        _validate_transient(ram, normalized)

        def run(subset: List[TransientScenario]) -> CampaignResult:
            outcomes = _map_jobs(
                _transient_worker,
                (ram, workload, self.engine, self.chunk),
                subset,
                self.workers,
            )
            result = CampaignResult(
                cycles_simulated=len(workload), engine=self.engine
            )
            for scenario, (first_error, first_detection) in zip(
                subset, outcomes
            ):
                result.add(
                    FaultRecord(
                        fault=scenario,
                        kind="transient",
                        first_detection=first_detection,
                        first_error=first_error,
                    )
                )
            return result

        def material():
            return self._material(
                "transient",
                describe_target(ram),
                [scenario.describe() for scenario in normalized],
                workload,
            )

        return self._execute(
            "transient", material, normalized, run,
            workload=workload, shardable=True,
        )

    # -- march campaigns -----------------------------------------------------

    def march(
        self,
        ram: BehavioralRAM,
        scenarios: Iterable,
        test: MarchTest,
    ) -> CampaignResult:
        """March-test detection campaign over behavioural fault scenarios.

        Each scenario runs the full march from a fresh all-zero array;
        ``first_detection`` is the index of the first violating read in
        the compiled operation stream (one lane per operation), ``None``
        when the algorithm's coverage class misses the fault.  Packed
        backend: compiled lane masks with serial fallback for unknown
        fault classes; serial: full replay.
        """
        _require_fault_free(ram, "march")
        workload = Workload.march(test, ram.organization.words)
        normalized: List[MemoryScenario] = []
        for scenario in as_scenarios(scenarios):
            if not isinstance(scenario, MemoryScenario):
                raise TypeError(
                    f"march campaigns take memory scenarios, "
                    f"not {scenario.kind!r}"
                )
            normalized.append(scenario)

        def run(subset: List[MemoryScenario]) -> CampaignResult:
            outcomes = _map_jobs(
                _march_worker,
                (ram, workload, self.engine),
                subset,
                self.workers,
            )
            result = CampaignResult(
                cycles_simulated=len(workload), engine=self.engine
            )
            for scenario, first_detection in zip(subset, outcomes):
                result.add(
                    FaultRecord(
                        fault=scenario,
                        kind="memory",
                        first_detection=first_detection,
                    )
                )
            return result

        def material():
            return self._material(
                "march",
                describe_target(ram),
                [scenario.describe() for scenario in normalized],
                workload,
            )

        return self._execute(
            "march", material, normalized, run,
            workload=workload, shardable=True,
        )
