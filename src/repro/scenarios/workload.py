"""`Workload` — the one stimulus vocabulary every campaign speaks.

Before 1.3 each campaign family had its own incompatible notion of an
address stream: :func:`repro.faultsim.injector.random_addresses`,
:func:`repro.faultsim.transient.scrubbed_stream` and
:func:`repro.memory.march.march_address_stream` all returned bare
``List[int]``\\ s with different parameterisations.  A :class:`Workload`
replaces all three (the old helpers survive as thin shims):

* **seeded** — every stochastic generator takes an explicit ``seed`` and
  re-derives its RNG on each iteration, so the same workload value
  always replays the same trace, in any process (workloads are plain
  picklable dataclasses, safe to ship to ``workers=N`` pools);
* **composable** — workloads concatenate (``a + b``) and interleave
  (:meth:`Workload.interleave`), so "march sweep then uniform traffic"
  or "scrub every 4th cycle" are first-class values;
* **chunk-iterable** — :meth:`chunks` / :meth:`address_chunks` stream a
  million-cycle trace in bounded memory; the packed campaign engines
  accept a ``chunk=W`` lane width and are proven invariant under it;
* **read/write aware** — accesses carry an operation and a background
  bit, so RAM-level campaigns (march, transient) and decoder-level
  campaigns (address-only) draw from the same object.

Every generator from the pre-1.3 helpers is reproduced bit-for-bit:
``Workload.uniform(1 << n, cycles, seed).address_list()`` equals the old
``random_addresses(n, cycles, seed)``, and likewise for sequential,
bursty, scrubbed and march streams (the shim tests pin this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.memory.march import MARCH_TESTS, MarchElement, MarchTest

__all__ = [
    "Access",
    "Workload",
    "UniformWorkload",
    "SequentialWorkload",
    "BurstyWorkload",
    "ScrubbedWorkload",
    "MarchWorkload",
    "MixedWorkload",
    "ExplicitWorkload",
    "ConcatWorkload",
    "InterleavedWorkload",
    "NAMED_WORKLOADS",
    "named_workload",
    "workload_kinds",
    "as_workload",
]


@dataclass(frozen=True)
class Access:
    """One memory cycle: a read or a write of one address.

    ``bit`` is the data *background* (all-``bit`` word): the value a
    write stores, and — for march-derived reads — the value the read
    expects.  ``None`` on plain reads with no expectation.
    """

    op: str
    address: int
    bit: Optional[int] = None

    def __post_init__(self):
        if self.op not in ("r", "w"):
            raise ValueError(f"op must be 'r' or 'w', got {self.op!r}")
        if self.op == "w" and self.bit not in (0, 1):
            raise ValueError(f"writes need a 0/1 background, got {self.bit!r}")

    @property
    def is_read(self) -> bool:
        return self.op == "r"

    @property
    def is_write(self) -> bool:
        return self.op == "w"


class Workload:
    """Base of the stimulus hierarchy; see the module docstring.

    Subclasses provide ``kind`` (the serialisation tag), a ``cycles``
    length, and :meth:`accesses`, the canonical lazy iterator.
    """

    kind: ClassVar[str] = "workload"

    # -- iteration -----------------------------------------------------------

    def accesses(self) -> Iterator[Access]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Access]:
        return self.accesses()

    # NOTE: no base ``cycles`` property — a data descriptor here would
    # shadow the ``cycles`` *field* of the leaf dataclasses.  Leaves
    # either declare the field or define their own derived property.

    def __len__(self) -> int:
        return self.cycles

    def addresses(self) -> Iterator[int]:
        """The address-per-cycle view (every op is one memory cycle)."""
        return (access.address for access in self.accesses())

    def address_list(self) -> List[int]:
        return list(self.addresses())

    def chunks(self, size: int) -> Iterator[List[Access]]:
        """Stream the trace in lists of at most ``size`` accesses.

        The bounded-memory path: a million-cycle workload never has to
        materialise, and the packed engines consume these chunks as lane
        windows (``chunk=W``) with results invariant in ``W``.
        """
        if size < 1:
            raise ValueError(f"chunk size must be >= 1, got {size}")
        batch: List[Access] = []
        for access in self.accesses():
            batch.append(access)
            if len(batch) == size:
                yield batch
                batch = []
        if batch:
            yield batch

    def address_chunks(self, size: int) -> Iterator[List[int]]:
        for batch in self.chunks(size):
            yield [access.address for access in batch]

    @property
    def has_writes(self) -> bool:
        """Whether any access is a write (leafs override cheaply)."""
        return any(access.is_write for access in self.accesses())

    # -- composition ---------------------------------------------------------

    def __add__(self, other: "Workload") -> "ConcatWorkload":
        if not isinstance(other, Workload):
            return NotImplemented
        parts: List[Workload] = []
        for workload in (self, other):
            if isinstance(workload, ConcatWorkload):
                parts.extend(workload.parts)
            else:
                parts.append(workload)
        return ConcatWorkload(tuple(parts))

    def interleave(self, *others: "Workload") -> "InterleavedWorkload":
        """Round-robin this workload with others, one access at a time
        (exhausted parts drop out) — e.g. scrub traffic woven into
        uniform traffic."""
        return InterleavedWorkload((self,) + tuple(others))

    # -- serialisation -------------------------------------------------------

    def _params(self) -> dict:
        raise NotImplementedError

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by :meth:`from_dict` (this is
        what a ``DesignSpec.workload`` serialises as)."""
        data = {"kind": self.kind}
        data.update(self._params())
        return data

    @staticmethod
    def from_dict(data: dict) -> "Workload":
        kind = data.get("kind")
        cls = _WORKLOAD_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown workload kind {kind!r}; "
                f"known: {sorted(_WORKLOAD_KINDS)}"
            )
        params = {k: v for k, v in data.items() if k != "kind"}
        return cls._from_params(params)

    @classmethod
    def _from_params(cls, params: dict) -> "Workload":
        return cls(**params)

    def label(self) -> str:
        """Compact human identity, e.g. ``uniform(64w, 256cyc, seed=7)``."""
        inner = ", ".join(f"{k}={v}" for k, v in self._params().items())
        return f"{self.kind}({inner})"

    # -- constructors (the vocabulary) ---------------------------------------

    @staticmethod
    def uniform(space: int, cycles: int, seed: int = 0) -> "UniformWorkload":
        return UniformWorkload(space=space, cycles=cycles, seed=seed)

    @staticmethod
    def sequential(
        space: int, cycles: int, start: int = 0
    ) -> "SequentialWorkload":
        return SequentialWorkload(space=space, cycles=cycles, start=start)

    @staticmethod
    def bursty(
        space: int, cycles: int, locality: int = 8, seed: int = 0
    ) -> "BurstyWorkload":
        return BurstyWorkload(
            space=space, cycles=cycles, locality=locality, seed=seed
        )

    @staticmethod
    def scrubbed(
        words: int, cycles: int, scrub_period: int, seed: int = 0
    ) -> "ScrubbedWorkload":
        return ScrubbedWorkload(
            words=words, cycles=cycles, scrub_period=scrub_period, seed=seed
        )

    @staticmethod
    def march(
        test: MarchTest, words: int, reads_only: bool = False
    ) -> "MarchWorkload":
        return MarchWorkload(test=test, words=words, reads_only=reads_only)

    @staticmethod
    def mixed(
        space: int,
        cycles: int,
        seed: int = 0,
        write_ratio: float = 0.5,
    ) -> "MixedWorkload":
        return MixedWorkload(
            space=space, cycles=cycles, seed=seed, write_ratio=write_ratio
        )

    @staticmethod
    def explicit(addresses: Iterable[int]) -> "ExplicitWorkload":
        return ExplicitWorkload(addresses_=tuple(addresses))


def _check_space(space: int) -> None:
    if space < 1:
        raise ValueError(f"address space must be >= 1, got {space}")


def _check_cycles(cycles: int) -> None:
    if cycles < 0:
        raise ValueError(f"cycle count must be >= 0, got {cycles}")


@dataclass(frozen=True)
class UniformWorkload(Workload):
    """Uniform i.i.d. reads — the paper's latency-model regime."""

    kind: ClassVar[str] = "uniform"

    space: int
    cycles: int
    seed: int = 0

    def __post_init__(self):
        _check_space(self.space)
        _check_cycles(self.cycles)

    def accesses(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        for _ in range(self.cycles):
            yield Access("r", rng.randrange(self.space))

    @property
    def has_writes(self) -> bool:
        return False

    def _params(self) -> dict:
        return {"space": self.space, "cycles": self.cycles, "seed": self.seed}


@dataclass(frozen=True)
class SequentialWorkload(Workload):
    """Linear wrapping sweep — a marching access pattern."""

    kind: ClassVar[str] = "sequential"

    space: int
    cycles: int
    start: int = 0

    def __post_init__(self):
        _check_space(self.space)
        _check_cycles(self.cycles)

    def accesses(self) -> Iterator[Access]:
        for i in range(self.cycles):
            yield Access("r", (self.start + i) % self.space)

    @property
    def has_writes(self) -> bool:
        return False

    def _params(self) -> dict:
        return {"space": self.space, "cycles": self.cycles, "start": self.start}


@dataclass(frozen=True)
class BurstyWorkload(Workload):
    """Short sequential runs at random bases (cache-like locality)."""

    kind: ClassVar[str] = "bursty"

    space: int
    cycles: int
    locality: int = 8
    seed: int = 0

    def __post_init__(self):
        _check_space(self.space)
        _check_cycles(self.cycles)
        if self.locality < 1:
            raise ValueError(f"locality must be >= 1, got {self.locality}")

    def accesses(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        emitted = 0
        while emitted < self.cycles:
            base = rng.randrange(self.space)
            run = rng.randint(1, self.locality)
            for offset in range(run):
                yield Access("r", (base + offset) % self.space)
                emitted += 1
                if emitted == self.cycles:
                    return

    @property
    def has_writes(self) -> bool:
        return False

    def _params(self) -> dict:
        return {
            "space": self.space,
            "cycles": self.cycles,
            "locality": self.locality,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class ScrubbedWorkload(Workload):
    """Uniform traffic with a round-robin scrubber every ``scrub_period``
    cycles — the workload that bounds transient time-to-next-read."""

    kind: ClassVar[str] = "scrubbed"

    words: int
    cycles: int
    scrub_period: int
    seed: int = 0

    def __post_init__(self):
        _check_space(self.words)
        _check_cycles(self.cycles)
        if self.scrub_period < 0:
            raise ValueError(
                f"scrub period must be >= 0, got {self.scrub_period}"
            )

    def accesses(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        scrub_ptr = 0
        for cycle in range(self.cycles):
            if self.scrub_period > 0 and cycle % self.scrub_period == 0:
                yield Access("r", scrub_ptr % self.words)
                scrub_ptr += 1
            else:
                yield Access("r", rng.randrange(self.words))

    @property
    def has_writes(self) -> bool:
        return False

    def _params(self) -> dict:
        return {
            "words": self.words,
            "cycles": self.cycles,
            "scrub_period": self.scrub_period,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class MarchWorkload(Workload):
    """A march test flattened into its per-cycle read/write trace.

    One lane per operation, element by element, each element visiting
    its addresses in order with all its operations — the compiled form
    both the RAM-level march campaigns and the decoder campaigns
    consume (``reads_only`` keeps just the read cycles).
    """

    kind: ClassVar[str] = "march"

    test: MarchTest
    words: int
    reads_only: bool = False

    def __post_init__(self):
        _check_space(self.words)

    def _element_ops(self, element: MarchElement) -> List[str]:
        return [
            op
            for op in element.operations
            if not self.reads_only or op.startswith("r")
        ]

    def accesses(self) -> Iterator[Access]:
        for element in self.test.elements:
            ops = self._element_ops(element)
            if not ops:
                continue
            for address in element.addresses(self.words):
                for op in ops:
                    yield Access(op[0], address, int(op[1]))

    @property
    def cycles(self) -> int:
        per_address = sum(
            len(self._element_ops(e)) for e in self.test.elements
        )
        return per_address * self.words

    @property
    def has_writes(self) -> bool:
        return not self.reads_only and any(
            op.startswith("w")
            for element in self.test.elements
            for op in element.operations
        )

    def _params(self) -> dict:
        return {
            "test": {
                "name": self.test.name,
                "elements": [
                    {"order": e.order, "operations": list(e.operations)}
                    for e in self.test.elements
                ],
            },
            "words": self.words,
            "reads_only": self.reads_only,
        }

    @classmethod
    def _from_params(cls, params: dict) -> "MarchWorkload":
        test = params["test"]
        if isinstance(test, str):
            resolved = MARCH_TESTS.get(test)
            if resolved is None:
                raise ValueError(
                    f"unknown march test {test!r}; "
                    f"known: {sorted(MARCH_TESTS)}"
                )
            test = resolved
        elif isinstance(test, dict):
            test = MarchTest(
                test["name"],
                tuple(
                    MarchElement(e["order"], tuple(e["operations"]))
                    for e in test["elements"]
                ),
            )
        return cls(
            test=test,
            words=params["words"],
            reads_only=params.get("reads_only", False),
        )

    def label(self) -> str:
        suffix = ", reads_only" if self.reads_only else ""
        return f"march({self.test.name}, words={self.words}{suffix})"


@dataclass(frozen=True)
class MixedWorkload(Workload):
    """Random mixed read/write traffic (writes store random backgrounds)."""

    kind: ClassVar[str] = "mixed"

    space: int
    cycles: int
    seed: int = 0
    write_ratio: float = 0.5

    def __post_init__(self):
        _check_space(self.space)
        _check_cycles(self.cycles)
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError(
                f"write_ratio must be in [0, 1], got {self.write_ratio}"
            )

    def accesses(self) -> Iterator[Access]:
        rng = random.Random(self.seed)
        for _ in range(self.cycles):
            address = rng.randrange(self.space)
            if rng.random() < self.write_ratio:
                yield Access("w", address, rng.randrange(2))
            else:
                yield Access("r", address)

    @property
    def has_writes(self) -> bool:
        return self.write_ratio > 0.0 and self.cycles > 0

    def _params(self) -> dict:
        return {
            "space": self.space,
            "cycles": self.cycles,
            "seed": self.seed,
            "write_ratio": self.write_ratio,
        }


@dataclass(frozen=True)
class ExplicitWorkload(Workload):
    """An explicit address trace (reads) — the adapter every legacy
    ``List[int]`` stream passes through."""

    kind: ClassVar[str] = "explicit"

    addresses_: Tuple[int, ...]

    def accesses(self) -> Iterator[Access]:
        for address in self.addresses_:
            yield Access("r", address)

    @property
    def cycles(self) -> int:
        return len(self.addresses_)

    @property
    def has_writes(self) -> bool:
        return False

    def address_list(self) -> List[int]:
        return list(self.addresses_)

    def _params(self) -> dict:
        return {"addresses_": list(self.addresses_)}

    @classmethod
    def _from_params(cls, params: dict) -> "ExplicitWorkload":
        return cls(addresses_=tuple(params["addresses_"]))

    def label(self) -> str:
        return f"explicit({len(self.addresses_)} addresses)"


@dataclass(frozen=True)
class ConcatWorkload(Workload):
    """Workloads back to back (built by ``a + b``)."""

    kind: ClassVar[str] = "concat"

    parts: Tuple[Workload, ...]

    def __post_init__(self):
        if not self.parts:
            raise ValueError("concatenation needs at least one workload")

    def accesses(self) -> Iterator[Access]:
        for part in self.parts:
            yield from part.accesses()

    @property
    def cycles(self) -> int:
        return sum(part.cycles for part in self.parts)

    @property
    def has_writes(self) -> bool:
        return any(part.has_writes for part in self.parts)

    def _params(self) -> dict:
        return {"parts": [part.to_dict() for part in self.parts]}

    @classmethod
    def _from_params(cls, params: dict) -> "ConcatWorkload":
        return cls(
            parts=tuple(Workload.from_dict(p) for p in params["parts"])
        )

    def label(self) -> str:
        return " + ".join(part.label() for part in self.parts)


@dataclass(frozen=True)
class InterleavedWorkload(Workload):
    """Round-robin interleave, one access per part per turn; parts that
    run out drop from the rotation."""

    kind: ClassVar[str] = "interleave"

    parts: Tuple[Workload, ...]

    def __post_init__(self):
        if not self.parts:
            raise ValueError("interleaving needs at least one workload")

    def accesses(self) -> Iterator[Access]:
        iterators = [part.accesses() for part in self.parts]
        while iterators:
            alive = []
            for iterator in iterators:
                try:
                    yield next(iterator)
                except StopIteration:
                    continue
                alive.append(iterator)
            iterators = alive

    @property
    def cycles(self) -> int:
        return sum(part.cycles for part in self.parts)

    @property
    def has_writes(self) -> bool:
        return any(part.has_writes for part in self.parts)

    def _params(self) -> dict:
        return {"parts": [part.to_dict() for part in self.parts]}

    @classmethod
    def _from_params(cls, params: dict) -> "InterleavedWorkload":
        return cls(
            parts=tuple(Workload.from_dict(p) for p in params["parts"])
        )

    def label(self) -> str:
        return " | ".join(part.label() for part in self.parts)


_WORKLOAD_KINDS: Dict[str, Type[Workload]] = {
    cls.kind: cls
    for cls in (
        UniformWorkload,
        SequentialWorkload,
        BurstyWorkload,
        ScrubbedWorkload,
        MarchWorkload,
        MixedWorkload,
        ExplicitWorkload,
        ConcatWorkload,
        InterleavedWorkload,
    )
}

def workload_kinds() -> Tuple[str, ...]:
    """The ``kind`` tags a serialised :class:`Workload` dict may carry
    (what :meth:`Workload.from_dict` dispatches on)."""
    return tuple(_WORKLOAD_KINDS)


#: family names a ``DesignSpec.workload``/CLI ``--workload`` may use; the
#: engine resolves them against the organisation via :func:`named_workload`
NAMED_WORKLOADS = ("uniform", "sequential", "bursty", "scrubbed", "march")


def named_workload(
    name: str, space: int, cycles: int, seed: int = 0
) -> Workload:
    """Resolve a workload *family name* for a given address space.

    The string form a :class:`~repro.design.spec.DesignSpec` (or the
    CLI's ``--workload``) carries; full :class:`Workload` values pin
    every parameter instead.

    ``"march"`` is one full March C- sweep, whose length is fixed by
    the algorithm (10 ops x ``space``) — the requested ``cycles`` is
    ignored for that family (the consumer's report carries the real
    stream length).
    """
    if name == "uniform":
        return Workload.uniform(space, cycles, seed=seed)
    if name == "sequential":
        return Workload.sequential(space, cycles)
    if name == "bursty":
        return Workload.bursty(space, cycles, seed=seed)
    if name == "scrubbed":
        return Workload.scrubbed(space, cycles, scrub_period=4, seed=seed)
    if name == "march":
        return Workload.march(MARCH_TESTS["March C-"], space)
    raise ValueError(
        f"unknown workload family {name!r}; known: {NAMED_WORKLOADS}"
    )


def as_workload(
    stream: Union[Workload, Sequence[int]]
) -> Workload:
    """Normalise a campaign stimulus: pass workloads through, wrap bare
    address sequences (the pre-1.3 convention) in an
    :class:`ExplicitWorkload`."""
    if isinstance(stream, Workload):
        return stream
    return ExplicitWorkload(addresses_=tuple(stream))
