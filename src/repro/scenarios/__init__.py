"""`repro.scenarios` — the unified scenario layer (1.3).

One vocabulary drives every campaign:

* :class:`Workload` — seeded, composable, chunk-iterable stimulus
  (uniform / sequential / bursty / scrubbed / march-derived / mixed
  read-write, plus concatenation and interleaving);
* :class:`FaultScenario` — structural stuck-ats, behavioural memory
  faults, transient upsets and multi-fault combinations under one
  hierarchy;
* :class:`CampaignEngine` — the facade routing any scenario family to
  the ``"packed"`` fast path or the ``"serial"`` bit-identity oracle,
  with ``collapse`` / ``workers`` / ``chunk`` execution policy.

The pre-1.3 helpers (``random_addresses``, ``scrubbed_stream``,
``march_address_stream``, ``transient_campaign``) remain as thin shims
over these types; see CHANGES.md for the migration table.
"""

from repro.scenarios.engine import CampaignEngine
from repro.scenarios.faults import (
    FaultScenario,
    MemoryScenario,
    StructuralScenario,
    TransientScenario,
    as_scenarios,
)
from repro.scenarios.workload import (
    NAMED_WORKLOADS,
    Access,
    BurstyWorkload,
    ConcatWorkload,
    ExplicitWorkload,
    InterleavedWorkload,
    MarchWorkload,
    MixedWorkload,
    ScrubbedWorkload,
    SequentialWorkload,
    UniformWorkload,
    Workload,
    as_workload,
    named_workload,
    workload_kinds,
)

__all__ = [
    "Access",
    "Workload",
    "UniformWorkload",
    "SequentialWorkload",
    "BurstyWorkload",
    "ScrubbedWorkload",
    "MarchWorkload",
    "MixedWorkload",
    "ExplicitWorkload",
    "ConcatWorkload",
    "InterleavedWorkload",
    "NAMED_WORKLOADS",
    "named_workload",
    "workload_kinds",
    "as_workload",
    "FaultScenario",
    "StructuralScenario",
    "MemoryScenario",
    "TransientScenario",
    "as_scenarios",
    "CampaignEngine",
]
