"""The analysis rule registry and per-run context.

Rules follow the same ``Registry`` discipline as codes / checkers /
populations: each rule registers under a stable id (``net-dangling``,
``tsc-code-disjoint``, ...) with the artifact kind it applies to, a
default severity, and a check callable.  ``analyze()`` selects the
rules whose kind matches the artifact and runs them in registration
order, which makes reports deterministic.

A check callable has the signature ``check(obj, ctx, rule)`` and yields
:class:`~repro.analysis.report.Finding` / :class:`~repro.analysis.
report.Skip` instances — usually built through :meth:`LintRule.finding`
/ :meth:`LintRule.skip` so ids and default severities stay in one
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Tuple, Union

from repro.analysis.report import SEVERITIES, Finding, Skip
from repro.design.registry import Registry

__all__ = ["RULES", "RULE_KINDS", "LintRule", "LintOptions", "Context", "rule"]

#: artifact kinds a rule can apply to.  ``circuit`` rules see a
#: ``circuits.netlist.Circuit``; ``checker`` rules a ``checkers.base.
#: Checker`` (with the observed code on the context); ``decoder`` rules
#: a ``rom.nor_matrix.CheckedDecoder``; ``design`` rules a built
#: ``core.scheme.SelfCheckingMemory``; ``suite`` rules a
#: ``suite.spec.SuiteSpec``.
RULE_KINDS = ("circuit", "checker", "decoder", "design", "suite")

#: the analysis-rule registry (plug in with ``@rule(...)`` or
#: ``RULES.register``)
RULES = Registry("analysis rule")


@dataclass(frozen=True)
class LintOptions:
    """Size cutoffs keeping static analysis cheap on Mb-scale targets.

    A rule whose work would exceed a budget downgrades to a
    :class:`Skip` with the numbers in the reason — never hangs, never
    silently passes.
    """

    #: code-disjoint brute force scans 2^length inputs; skip above this
    max_exhaustive_bits: int = 14
    #: budget for fault x vector x gate products (self-testing /
    #: fault-secure proofs)
    max_property_cost: int = 4_000_000
    #: code-word sample size for the sampled self-testing pre-pass
    self_testing_sample: int = 64
    #: addresses checked per mapping by the placement rule
    placement_sample: int = 4096


@dataclass(frozen=True)
class Context:
    """Everything a rule may need beyond the artifact itself."""

    options: LintOptions = field(default_factory=LintOptions)
    #: location prefix for findings ("row checker", "column decoder")
    location: str = ""
    #: the code a checker observes (overrides derivation)
    code: Optional[object] = None

    def at(self, location: str, code: Optional[object] = None) -> "Context":
        """A sub-context for a nested artifact (prefixes locations)."""
        prefix = f"{self.location}: {location}" if self.location else location
        return replace(self, location=prefix, code=code)

    def loc(self, detail: str = "") -> str:
        """A finding location under this context's prefix."""
        if not detail:
            return self.location or "target"
        return f"{self.location}: {detail}" if self.location else detail


@dataclass(frozen=True)
class LintRule:
    """One registered rule: identity, applicability, and the check."""

    id: str
    kind: str
    severity: str
    summary: str
    check: Callable[..., Iterable[Union[Finding, Skip]]]

    def __post_init__(self):
        if self.kind not in RULE_KINDS:
            raise ValueError(
                f"rule {self.id!r}: unknown kind {self.kind!r}; "
                f"known: {RULE_KINDS}"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.id!r}: unknown severity {self.severity!r}; "
                f"known: {SEVERITIES}"
            )

    # -- finding/skip constructors (keep ids + severities in one place) ------

    def finding(
        self,
        location: str,
        message: str,
        hint: str = "",
        counterexample: Optional[dict] = None,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            location=location,
            message=message,
            hint=hint,
            counterexample=counterexample,
        )

    def skip(self, location: str, reason: str) -> Skip:
        return Skip(rule=self.id, location=location, reason=reason)


def rule(
    rule_id: str, kind: str, severity: str = "error", summary: str = ""
) -> Callable:
    """Register a check function as an analysis rule.

    >>> @rule("demo-rule", "circuit", severity="info", summary="demo")
    ... def _check_demo(circuit, ctx, rule):
    ...     return []
    >>> RULES.get("demo-rule").kind
    'circuit'
    >>> RULES.unregister("demo-rule")
    """

    def decorate(check: Callable) -> Callable:
        doc = (check.__doc__ or "").strip().splitlines()
        RULES.register(
            rule_id,
            LintRule(
                id=rule_id,
                kind=kind,
                severity=severity,
                summary=summary or (doc[0] if doc else rule_id),
                check=check,
            ),
        )
        return check

    return decorate


def rules_for(kind: str) -> Tuple[LintRule, ...]:
    """Registered rules applying to one artifact kind, in registration
    order."""
    return tuple(
        RULES.get(name)
        for name in RULES.names()
        if RULES.get(name).kind == kind
    )
