"""`repro.analysis` — static design linter & TSC property prover (1.8).

Rule-based static analysis over the repo's three design artifacts:

* **netlist rules** on :class:`~repro.circuits.netlist.Circuit` —
  undriven/multi-driven nets, combinational cycles, dangling outputs,
  unreachable cones, and the collapse-soundness audit;
* **design rules** on built :class:`~repro.core.scheme.
  SelfCheckingMemory` / checkers / checked decoders — width and
  placement checks plus the brute-force (and, for parity trees, exact
  symbolic) TSC proofs: code-disjoint, self-testing, fault-secure;
* **suite rules** on :class:`~repro.suite.spec.SuiteSpec` — cells that
  can never run, store-key collisions, provenance completeness.

Entry points: :func:`analyze` (library), ``repro lint`` (CLI), and the
opt-in ``lint=`` hooks on ``DesignEngine.build`` / ``SuiteRunner.run``.
"""

from repro.analysis.base import (
    RULE_KINDS,
    RULES,
    Context,
    LintOptions,
    LintRule,
    rule,
    rules_for,
)
from repro.analysis.driver import analyze
from repro.analysis.report import (
    SEVERITIES,
    AnalysisError,
    AnalysisReport,
    Finding,
    Skip,
)

# import for registration side effects (each module registers its rules)
from repro.analysis import netlist_rules  # noqa: E402  isort: skip
from repro.analysis import design_rules  # noqa: E402  isort: skip
from repro.analysis import suite_rules  # noqa: E402  isort: skip

from repro.analysis.netlist_rules import (  # isort: skip
    collapse_cone_violations,
    fault_cone,
    output_cones,
)

__all__ = [
    "analyze",
    "AnalysisReport",
    "AnalysisError",
    "Finding",
    "Skip",
    "SEVERITIES",
    "RULES",
    "RULE_KINDS",
    "LintRule",
    "LintOptions",
    "Context",
    "rule",
    "rules_for",
    "output_cones",
    "fault_cone",
    "collapse_cone_violations",
    "netlist_rules",
    "design_rules",
    "suite_rules",
]
