"""Structured findings — what the static analyzer returns.

An :class:`AnalysisReport` is the linter's single output type: a list
of :class:`Finding`\\ s (rule id, severity, location, message, fix
hint, optional counterexample) plus the :class:`Skip` records for
rules that declined to run (size cutoffs, behavioural-only checkers).
It renders as text for terminals and as stable JSON for CI artifacts;
``exit_code`` encodes the CLI contract (0 clean, 1 findings).

:class:`AnalysisError` wraps a report whose error findings should
abort a flow — the ``lint=`` hooks on ``DesignEngine.build`` and
``SuiteRunner.run`` raise it before any cycle is simulated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "SEVERITIES",
    "Finding",
    "Skip",
    "AnalysisReport",
    "AnalysisError",
]

#: recognised finding severities, most severe first
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    severity: str
    location: str
    message: str
    #: one-line suggested fix, when the rule knows one
    hint: str = ""
    #: minimal JSON-able witness (a misclassified word, an undetected
    #: fault, a colliding cell pair)
    counterexample: Optional[dict] = None

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; known: {SEVERITIES}"
            )

    def to_dict(self) -> dict:
        data: dict = {
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }
        if self.hint:
            data["hint"] = self.hint
        if self.counterexample is not None:
            data["counterexample"] = self.counterexample
        return data

    def render(self) -> str:
        lines = [
            f"{self.severity}[{self.rule}] {self.location}: {self.message}"
        ]
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        if self.counterexample is not None:
            witness = ", ".join(
                f"{key}={value}"
                for key, value in self.counterexample.items()
            )
            lines.append(f"    counterexample: {witness}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Skip:
    """A rule that declined to decide, and why.

    Skips are first-class: a size cutoff on an Mb-scale target must
    read as "not proven here", never as "proven" — CI surfaces them in
    the JSON artifact even when the report is otherwise clean.
    """

    rule: str
    location: str
    reason: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "location": self.location,
            "reason": self.reason,
        }

    def render(self) -> str:
        return f"skipped[{self.rule}] {self.location}: {self.reason}"


@dataclass
class AnalysisReport:
    """Every finding and skip from one ``analyze()`` call."""

    target: str
    kind: str
    findings: List[Finding] = field(default_factory=list)
    skipped: List[Skip] = field(default_factory=list)
    rules_run: Tuple[str, ...] = ()
    wall_time_s: float = 0.0

    # -- counters ------------------------------------------------------------

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def errors(self) -> int:
        return self.count("error")

    @property
    def warnings(self) -> int:
        return self.count("warning")

    @property
    def ok(self) -> bool:
        """No error findings (warnings/info may remain)."""
        return self.errors == 0

    @property
    def clean(self) -> bool:
        """No findings of any severity."""
        return not self.findings

    def exit_code(self, strict: bool = False) -> int:
        """The CLI contract: 0 clean, 1 on errors (``strict`` promotes
        warnings and info to failures too)."""
        if strict:
            return 0 if self.clean else 1
        return 0 if self.ok else 1

    # -- merging -------------------------------------------------------------

    def extend(self, other: "AnalysisReport") -> None:
        """Fold a sub-analysis (e.g. one decoder circuit of a design)
        into this report."""
        self.findings.extend(other.findings)
        self.skipped.extend(other.skipped)
        merged = list(self.rules_run)
        for rule_id in other.rules_run:
            if rule_id not in merged:
                merged.append(rule_id)
        self.rules_run = tuple(merged)

    # -- serialisation -------------------------------------------------------

    def to_dict(self, stable_only: bool = False) -> dict:
        """Stable JSON: findings/skips in rule-execution order, counts
        keyed by severity.  ``stable_only`` drops wall time so CI can
        diff artifacts across runs."""
        counts: Dict[str, int] = {
            severity: self.count(severity) for severity in SEVERITIES
        }
        data: dict = {
            "target": self.target,
            "kind": self.kind,
            "rules_run": list(self.rules_run),
            "counts": counts,
            "findings": [f.to_dict() for f in self.findings],
            "skipped": [s.to_dict() for s in self.skipped],
        }
        if not stable_only:
            data["execution"] = {"wall_time_s": self.wall_time_s}
        return data

    def to_json(
        self, indent: Optional[int] = 2, stable_only: bool = False
    ) -> str:
        return json.dumps(
            self.to_dict(stable_only=stable_only), indent=indent
        )

    def render(self) -> str:
        head = (
            f"lint {self.target} ({self.kind}) — "
            f"{self.errors} error(s), {self.warnings} warning(s), "
            f"{self.count('info')} info, {len(self.skipped)} skipped; "
            f"{len(self.rules_run)} rule(s) in {self.wall_time_s:.3f}s"
        )
        lines = [head]
        for finding in self.findings:
            lines.append("  " + finding.render().replace("\n", "\n  "))
        for skip in self.skipped:
            lines.append("  " + skip.render())
        if self.clean:
            lines.append("  clean")
        return "\n".join(lines) + "\n"


class AnalysisError(ValueError):
    """Raised by the ``lint=`` hooks when analysis finds errors.

    Carries the full :class:`AnalysisReport` as ``.report`` so callers
    can render or serialise every finding, while ``str(exc)`` stays a
    one-line diagnostic (the CLI's ``error:`` contract).
    """

    def __init__(self, report: AnalysisReport):
        self.report = report
        first = next(
            (f for f in report.findings if f.severity == "error"), None
        )
        detail = (
            f" — first: [{first.rule}] {first.location}: {first.message}"
            if first is not None
            else ""
        )
        super().__init__(
            f"static analysis of {report.target} found "
            f"{report.errors} error(s){detail}"
        )
