"""``analyze(obj) -> AnalysisReport`` — the analyzer's front door.

Dispatches on the artifact type and composes rule families: a built
:class:`~repro.core.scheme.SelfCheckingMemory` runs the design rules
plus, per axis, the netlist rules on the decoder circuit, the decoder
rules on the checked decoder and the checker rules on the observing
checker — every finding location-prefixed with the sub-artifact it came
from.  A :class:`~repro.design.spec.DesignSpec` is built first (through
the canonical :class:`~repro.design.engine.DesignEngine`), a
:class:`~repro.suite.spec.MatrixBlock` is wrapped into a one-block
suite.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

from repro.analysis.base import Context, LintOptions, rules_for
from repro.analysis.report import AnalysisReport, Skip

__all__ = ["analyze"]


def _selector(
    rules: Optional[Sequence[str]], skip: Sequence[str]
):
    only = None if rules is None else set(rules)
    excluded = set(skip)

    def selected(rule_id: str) -> bool:
        if rule_id in excluded:
            return False
        return only is None or rule_id in only

    return selected


def _run_rules(
    obj, kind: str, ctx: Context, report: AnalysisReport, selected
) -> None:
    ran: List[str] = list(report.rules_run)
    for lint_rule in rules_for(kind):
        if not selected(lint_rule.id):
            continue
        for item in lint_rule.check(obj, ctx, lint_rule):
            if isinstance(item, Skip):
                report.skipped.append(item)
            else:
                report.findings.append(item)
        if lint_rule.id not in ran:
            ran.append(lint_rule.id)
    report.rules_run = tuple(ran)


def _analyze_memory(
    memory, ctx: Context, report: AnalysisReport, selected
) -> None:
    _run_rules(memory, "design", ctx, report, selected)
    axes = (
        ("row", memory.row, memory.row_checker),
        ("column", memory.column, memory.column_checker),
    )
    for axis, decoder, checker in axes:
        decoder_ctx = ctx.at(f"{axis} decoder")
        _run_rules(
            decoder.circuit, "circuit", decoder_ctx, report, selected
        )
        _run_rules(decoder, "decoder", decoder_ctx, report, selected)
        code = getattr(decoder.mapping, "code", None)
        _run_rules(
            checker,
            "checker",
            ctx.at(f"{axis} checker", code=code),
            report,
            selected,
        )
    _run_rules(
        memory.parity_checker,
        "checker",
        ctx.at("parity checker", code=memory.ram.parity_code),
        report,
        selected,
    )


def analyze(
    obj,
    rules: Optional[Iterable[str]] = None,
    skip: Iterable[str] = (),
    code=None,
    options: Optional[LintOptions] = None,
) -> AnalysisReport:
    """Statically analyze a design artifact.

    ``obj`` may be a ``Circuit``, a ``Checker``, a ``CheckedDecoder``,
    a built ``SelfCheckingMemory``, a ``DesignSpec`` (built first), a
    ``SuiteSpec`` or a ``MatrixBlock``.  ``rules`` restricts to the
    given rule ids, ``skip`` excludes ids, ``code`` pins the code a
    standalone checker observes, ``options`` tunes the size cutoffs.
    """
    from repro.checkers.base import Checker
    from repro.circuits.netlist import Circuit
    from repro.core.scheme import SelfCheckingMemory
    from repro.design.spec import DesignSpec
    from repro.rom.nor_matrix import CheckedDecoder
    from repro.suite.spec import MatrixBlock, SuiteSpec

    selected = _selector(
        None if rules is None else list(rules), list(skip)
    )
    ctx = Context(options=options or LintOptions(), code=code)
    started = time.perf_counter()

    if isinstance(obj, DesignSpec):
        from repro.design.engine import DesignEngine

        memory = DesignEngine().build(obj)
        report = AnalysisReport(target=obj.label(), kind="design")
        _analyze_memory(memory, ctx, report, selected)
    elif isinstance(obj, SelfCheckingMemory):
        report = AnalysisReport(
            target=obj.organization.label(), kind="design"
        )
        _analyze_memory(obj, ctx, report, selected)
    elif isinstance(obj, CheckedDecoder):
        report = AnalysisReport(
            target=f"{obj.circuit.name} ({obj.mapping!r})", kind="decoder"
        )
        _run_rules(obj.circuit, "circuit", ctx, report, selected)
        _run_rules(obj, "decoder", ctx, report, selected)
    elif isinstance(obj, Circuit):
        report = AnalysisReport(target=obj.name, kind="circuit")
        _run_rules(obj, "circuit", ctx, report, selected)
    elif isinstance(obj, Checker):
        label = repr(obj)
        if " object at 0x" in label:
            label = f"{type(obj).__name__}[{obj.input_width}]"
        report = AnalysisReport(target=label, kind="checker")
        _run_rules(obj, "checker", ctx, report, selected)
    elif isinstance(obj, SuiteSpec):
        report = AnalysisReport(
            target=obj.name or "suite", kind="suite"
        )
        _run_rules(obj, "suite", ctx, report, selected)
    elif isinstance(obj, MatrixBlock):
        suite = SuiteSpec(name=obj.label or obj.family, blocks=(obj,))
        report = AnalysisReport(target=suite.name, kind="suite")
        _run_rules(suite, "suite", ctx, report, selected)
    else:
        raise TypeError(
            f"analyze() cannot handle {type(obj).__name__}; expected a "
            "Circuit, Checker, CheckedDecoder, SelfCheckingMemory, "
            "DesignSpec, SuiteSpec or MatrixBlock"
        )

    report.wall_time_s = time.perf_counter() - started
    return report
