"""Netlist well-formedness rules and the collapse-soundness audit.

These rules check the structural invariants that the simulation layers
assume: every read net is driven, every gate output is observed, the
gate list is levelized (no combinational cycles), one driver per net —
and, the deepest one, that :func:`repro.circuits.equivalence.
collapse_faults` never merges two faults whose *output cones* differ.
That last audit is the PR 2 primary-output-stem guard generalized: a
collapse class is sound only if all its members can influence exactly
the same set of primary outputs, so a class mixing cones proves the
collapser would fan one fault's measured latency out to a fault with
different observability.

Most structural rules cannot fire on circuits built through the public
``Circuit`` API (construction enforces the invariants) — they exist to
catch hand-mutated or externally deserialised netlists, and as the
defensive base the cone-based rules stand on: when the levelization
invariant is broken, cone computation is meaningless, so those rules
downgrade to a skip pointing at ``net-cycle``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.base import Context, LintRule, rule
from repro.analysis.report import Finding
from repro.circuits.equivalence import FaultClasses, collapse_faults
from repro.circuits.netlist import Circuit

__all__ = [
    "output_cones",
    "fault_cone",
    "collapse_cone_violations",
]


def _reader_map(circuit: Circuit) -> Dict[int, List[Tuple[int, int]]]:
    """net -> [(gate index, pin)] in one pass (``fanout_of`` per net is
    quadratic)."""
    readers: Dict[int, List[Tuple[int, int]]] = {}
    for gate in circuit.gates:
        for pin, src in enumerate(gate.inputs):
            readers.setdefault(src, []).append((gate.index, pin))
    return readers


def _is_levelized(circuit: Circuit) -> bool:
    """True iff every gate reads only earlier-created nets (the
    invariant the evaluator's single linear pass relies on)."""
    for gate in circuit.gates:
        if any(src >= gate.output for src in gate.inputs):
            return False
    return True


def output_cones(circuit: Circuit) -> List[int]:
    """For every net, a bitmask over primary-output *positions* the net
    can structurally influence.

    Computed in one reverse pass over the gate list (valid only for
    levelized circuits: a gate's output net id exceeds all its input
    net ids, so by the time a gate is visited every reader of its
    output has already been folded in).  Bitmasks keep the pass cheap
    on 1024-line decoder cones — unions are single big-int ORs.
    """
    masks: List[int] = [0] * circuit.num_nets
    for pos, net in enumerate(circuit.output_nets):
        masks[net] |= 1 << pos
    for gate in reversed(circuit.gates):
        cone = masks[gate.output]
        if not cone:
            continue
        for src in set(gate.inputs):
            masks[src] |= cone
    return masks


def _mask_outputs(circuit: Circuit, mask: int) -> List[int]:
    """Expand a cone bitmask to the primary-output net ids it covers."""
    outputs = circuit.output_nets
    return [
        outputs[pos] for pos in range(len(outputs)) if (mask >> pos) & 1
    ]


def fault_cone(circuit: Circuit, key: Tuple, cones: List[int]) -> int:
    """The output-cone mask of one fault key (``("net", net, v)`` or
    ``("pin", gate, pin, v)``).

    A net fault propagates from the net itself; a pin fault only enters
    the circuit through its gate's output, so its cone is the gate
    output's cone.
    """
    if key[0] == "net":
        return cones[key[1]]
    return cones[circuit.gates[key[1]].output]


def collapse_cone_violations(
    circuit: Circuit, classes: Optional[FaultClasses] = None
) -> List[dict]:
    """Collapse classes whose members do not share one output cone.

    Sound collapsing requires cone equality: two faults merged into one
    class are simulated once and share a measured latency, which is
    only valid if they can reach exactly the same primary outputs.
    ``classes`` defaults to a fresh :func:`collapse_faults` run; tests
    inject corrupted classes to prove the audit bites.
    """
    if classes is None:
        classes = collapse_faults(circuit)
    cones = output_cones(circuit)
    violations: List[dict] = []
    for cls in classes.classes:
        if len(cls) < 2:
            continue
        by_cone: Dict[int, List[Tuple]] = {}
        for fault in cls:
            key = fault.key()
            by_cone.setdefault(fault_cone(circuit, key, cones), []).append(
                key
            )
        if len(by_cone) > 1:
            violations.append(
                {
                    "class": [list(f.key()) for f in cls],
                    "cones": [
                        {
                            "outputs": _mask_outputs(circuit, cone),
                            "faults": [list(k) for k in keys],
                        }
                        for cone, keys in sorted(by_cone.items())
                    ],
                }
            )
    return violations


# -- rules --------------------------------------------------------------------


@rule(
    "net-undriven",
    "circuit",
    severity="error",
    summary="a read or output net has no driver and is not an input",
)
def _check_undriven(
    circuit: Circuit, ctx: Context, rule: LintRule
) -> Iterable[Finding]:
    inputs = set(circuit.input_nets)
    readers = _reader_map(circuit)
    driven = {gate.output for gate in circuit.gates}
    used = set(readers) | set(circuit.output_nets)
    for net in sorted(used - inputs - driven):
        n_readers = len(readers.get(net, ()))
        role = (
            f"read by {n_readers} gate pin(s)"
            if n_readers
            else "marked as a primary output"
        )
        yield rule.finding(
            ctx.loc(f"net {net}"),
            f"{role} but driven by no gate and not a primary input",
            hint="declare it with add_input() or drive it with a gate",
        )


@rule(
    "net-multidriver",
    "circuit",
    severity="error",
    summary="one net driven by more than one source",
)
def _check_multidriver(
    circuit: Circuit, ctx: Context, rule: LintRule
) -> Iterable[Finding]:
    drivers: Dict[int, List[str]] = {}
    for net in circuit.input_nets:
        drivers.setdefault(net, []).append("primary input")
    for gate in circuit.gates:
        drivers.setdefault(gate.output, []).append(
            f"gate #{gate.index} ({gate.name})"
        )
    for net, sources in sorted(drivers.items()):
        if len(sources) > 1:
            yield rule.finding(
                ctx.loc(f"net {net}"),
                f"driven by {len(sources)} sources: {', '.join(sources)}",
                hint="every net must have exactly one driver",
            )


@rule(
    "net-cycle",
    "circuit",
    severity="error",
    summary="a gate reads a net created later (combinational cycle)",
)
def _check_cycle(
    circuit: Circuit, ctx: Context, rule: LintRule
) -> Iterable[Finding]:
    # in this levelized representation a cycle (or any forward
    # reference) manifests as a gate reading a net id >= its own output
    for gate in circuit.gates:
        for pin, src in enumerate(gate.inputs):
            if src >= gate.output:
                later = circuit.driver_of(src)
                via = (
                    f"gate #{later.index} ({later.name})"
                    if later is not None
                    else "no gate yet"
                )
                yield rule.finding(
                    ctx.loc(f"gate #{gate.index} ({gate.name})"),
                    f"pin {pin} reads net {src} driven by {via}, created "
                    "after this gate — the single-pass evaluator would "
                    "read a stale value",
                    hint="gates may only read nets that already exist",
                )


@rule(
    "net-dangling",
    "circuit",
    severity="warning",
    summary="a gate output with no readers that is not a primary output",
)
def _check_dangling(
    circuit: Circuit, ctx: Context, rule: LintRule
) -> Iterable[Finding]:
    readers = _reader_map(circuit)
    observable = set(circuit.output_nets)
    for gate in circuit.gates:
        if gate.output not in readers and gate.output not in observable:
            yield rule.finding(
                ctx.loc(
                    f"net {gate.output} "
                    f"(gate #{gate.index}, {gate.name})"
                ),
                "gate output has no readers and is not a primary output "
                "— dead gate",
                hint="mark_output() the net or drop the gate",
            )


@rule(
    "net-unreachable",
    "circuit",
    severity="warning",
    summary="logic that feeds other gates but reaches no primary output",
)
def _check_unreachable(
    circuit: Circuit, ctx: Context, rule: LintRule
) -> Iterable[object]:
    if not _is_levelized(circuit):
        yield rule.skip(
            ctx.loc(), "circuit is not levelized (see net-cycle findings)"
        )
        return
    readers = _reader_map(circuit)
    cones = output_cones(circuit)
    for gate in circuit.gates:
        net = gate.output
        if net in readers and not cones[net]:
            yield rule.finding(
                ctx.loc(f"net {net} (gate #{gate.index}, {gate.name})"),
                f"feeds {len(readers[net])} gate pin(s) but no path "
                "reaches a primary output — unreachable logic cone",
                hint="faults in this cone are undetectable by any checker",
            )


@rule(
    "net-collapse-unsound",
    "circuit",
    severity="error",
    summary="a fault-collapse class mixes faults with different output cones",
)
def _check_collapse_sound(
    circuit: Circuit, ctx: Context, rule: LintRule
) -> Iterable[object]:
    if not _is_levelized(circuit):
        yield rule.skip(
            ctx.loc(), "circuit is not levelized (see net-cycle findings)"
        )
        return
    for violation in collapse_cone_violations(circuit):
        cones = violation["cones"]
        yield rule.finding(
            ctx.loc(f"collapse class {violation['class'][0]}"),
            f"class of {len(violation['class'])} faults spans "
            f"{len(cones)} distinct output cones — collapsing would "
            "share one measured latency across faults with different "
            "observability",
            hint="an output-stem guard is missing from a collapse rule",
            counterexample={
                "faults_a": cones[0]["faults"][0],
                "cone_a": cones[0]["outputs"],
                "faults_b": cones[1]["faults"][0],
                "cone_b": cones[1]["outputs"],
            },
        )
