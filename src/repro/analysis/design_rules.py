"""TSC property proofs and design-level composition rules.

Three artifact kinds plug in here:

* **checker** rules prove (or refute, with a concrete code-word witness)
  the §I checker properties: ``tsc-code-disjoint`` and
  ``tsc-self-testing``.  Proofs are exact, never statistical, via three
  strategies in order of preference — a symbolic GF(2) *affine* proof
  for XOR-tree checkers (any width, O(gates)), exhaustive brute force
  under a size cutoff, and a sampled pre-pass whose positive answers
  are still exact (detection by a word subset implies detection by the
  full set).  Anything else downgrades to a skip with the numbers.
* **decoder** rules check a :class:`~repro.rom.nor_matrix.
  CheckedDecoder`: the ROM realises exactly the mapping's programming
  (``decoder-consistency``), and — for injective mappings, where the
  paper promises zero escapes — the decoder+ROM block is fault-secure
  for internal stuck-ats (``tsc-fault-secure``).  Non-injective
  mappings alias by construction (the escape probability ~1/a *is* the
  paper's subject), so there the rule records a skip, not a failure.
* **design** rules check a built :class:`~repro.core.scheme.
  SelfCheckingMemory`: checker/code width agreement, checker placement
  (every emitted ROM word accepted, canonical stuck-at sentinels
  rejected), and coverage of the three array segments.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, List, Optional, Tuple

from repro.analysis.base import Context, LintRule, rule
from repro.checkers.base import Checker, indication_valid
from repro.checkers.berger_checker import BergerChecker
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.checkers.parity_checker import ParityChecker
from repro.checkers.properties import undetected_checker_faults
from repro.checkers.two_rail_checker import TwoRailChecker
from repro.circuits.faults import enumerate_stuck_at_faults
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.codes.m_out_of_n import MOutOfNCode
from repro.codes.parity import ParityCode
from repro.codes.two_rail import TwoRailCode
from repro.core.scheme import SelfCheckingMemory
from repro.rom.nor_matrix import CheckedDecoder
from repro.utils.bitops import all_bit_vectors

__all__ = ["derive_code", "realization"]

#: gates that are affine over GF(2) (output = XOR of inputs + constant)
_AFFINE_GATES = {
    GateType.BUF,
    GateType.NOT,
    GateType.XOR,
    GateType.XNOR,
    GateType.CONST0,
    GateType.CONST1,
}


# -- code and circuit derivation ---------------------------------------------


def derive_code(checker: Checker, ctx: Context):
    """The code a checker observes: explicit context, the checker's own
    ``code`` attribute, or the code its class is parameterised by."""
    if ctx.code is not None:
        return ctx.code
    code = getattr(checker, "code", None)
    if code is not None:
        return code
    if isinstance(checker, MOutOfNChecker):
        return MOutOfNCode(checker.m, checker.n)
    if isinstance(checker, TwoRailChecker):
        return TwoRailCode(checker.pairs)
    if isinstance(checker, ParityChecker):
        return ParityCode(checker.input_width - 1, even=checker.even)
    return None


def realization(checker: Checker) -> Tuple[Optional[Circuit], str]:
    """A gate-level circuit realising a checker, for fault injection.

    Behavioural m-out-of-n checkers (the design default) get a
    structural twin built on demand — the proof then covers the circuit
    a silicon implementation would use.  Returns ``(None, reason)``
    when no realisation is known.
    """
    circuit = getattr(checker, "circuit", None)
    if circuit is not None:
        return circuit, ""
    if isinstance(checker, MOutOfNChecker):
        twin = MOutOfNChecker(checker.m, checker.n, structural=True)
        return twin.circuit, "structural twin"
    return (
        None,
        f"{type(checker).__name__} is behavioural with no structural "
        "realisation registered",
    )


# -- the affine (GF(2)-symbolic) fast path -----------------------------------


def _affine_forms(circuit: Circuit) -> Optional[List[Tuple[int, int]]]:
    """Per-net ``(mask, const)`` with net = mask·x ⊕ const over the
    primary inputs, or None if any gate is non-affine."""
    forms: List[Tuple[int, int]] = [(0, 0)] * circuit.num_nets
    for i, net in enumerate(circuit.input_nets):
        forms[net] = (1 << i, 0)
    for gate in circuit.gates:
        gtype = gate.gate_type
        if gtype not in _AFFINE_GATES:
            return None
        if gtype is GateType.CONST0:
            forms[gate.output] = (0, 0)
        elif gtype is GateType.CONST1:
            forms[gate.output] = (0, 1)
        else:
            mask = const = 0
            for src in gate.inputs:
                src_mask, src_const = forms[src]
                mask ^= src_mask
                const ^= src_const
            if gtype in (GateType.NOT, GateType.XNOR):
                const ^= 1
            forms[gate.output] = (mask, const)
    return forms


def _affine_sensitivity(circuit: Circuit) -> List[Tuple[int, int]]:
    """Per net ``(s1, s2)``: flipping the net flips output rail k iff
    ``sk`` is 1 (affine circuits propagate flips with parity)."""
    sens: List[List[int]] = [[0, 0] for _ in range(circuit.num_nets)]
    for k, out in enumerate(circuit.output_nets[:2]):
        sens[out][k] ^= 1
    for gate in reversed(circuit.gates):
        s1, s2 = sens[gate.output]
        if not (s1 or s2):
            continue
        for src in gate.inputs:
            sens[src][0] ^= s1
            sens[src][1] ^= s2
    return [(s[0], s[1]) for s in sens]


def _affine_code_form(code) -> Optional[Tuple[int, int]]:
    """``(mask, const)`` with ``is_codeword(x) ⟺ mask·x == const``, for
    codes that are affine subspaces of the word space."""
    if isinstance(code, ParityCode):
        return (1 << code.length) - 1, 0 if code.even else 1
    return None


def _word_from_int(value: int, length: int) -> Tuple[int, ...]:
    """Bit i of ``value`` becomes word position i (the circuit-input
    convention of the affine masks)."""
    return tuple((value >> i) & 1 for i in range(length))


# -- checker rules ------------------------------------------------------------


def _width_mismatch(checker, code, ctx: Context, rule: LintRule):
    if checker.input_width != code.length:
        return rule.finding(
            ctx.loc(),
            f"checker observes {checker.input_width} bits but the code's "
            f"words are {code.length} bits wide",
            hint="size the checker from the mapping's rom_width",
        )
    return None


@rule(
    "tsc-code-disjoint",
    "checker",
    severity="error",
    summary="checker accepts exactly the code words (code-disjoint)",
)
def _check_code_disjoint(
    checker: Checker, ctx: Context, rule: LintRule
) -> Iterable[object]:
    code = derive_code(checker, ctx)
    if code is None:
        yield rule.skip(
            ctx.loc(), "cannot derive the observed code for this checker"
        )
        return
    mismatch = _width_mismatch(checker, code, ctx, rule)
    if mismatch is not None:
        yield mismatch
        return

    # exact symbolic proof for XOR-tree checkers over parity-type codes
    circuit = getattr(checker, "circuit", None)
    code_form = _affine_code_form(code)
    if circuit is not None and code_form is not None:
        forms = _affine_forms(circuit)
        if forms is not None and len(circuit.output_nets) == 2:
            mask1, const1 = forms[circuit.output_nets[0]]
            mask2, const2 = forms[circuit.output_nets[1]]
            code_mask, code_const = code_form
            # valid(x) = z1 ⊕ z2 must equal codeword(x) = 1 ⊕ mask·x
            # ⊕ const; their XOR is mask_diff·x ⊕ const_diff
            mask_diff = mask1 ^ mask2 ^ code_mask
            const_diff = const1 ^ const2 ^ code_const ^ 1
            if mask_diff == 0 and const_diff == 0:
                return  # proven for every input vector, any width
            witness_int = (
                0 if const_diff else (mask_diff & -mask_diff)
            )
            witness = _word_from_int(witness_int, code.length)
            indication = tuple(checker.indication(witness))
            yield rule.finding(
                ctx.loc(),
                "checker disagrees with the code on at least one word "
                "(symbolic GF(2) refutation)",
                counterexample={
                    "word": list(witness),
                    "indication": list(indication),
                    "is_codeword": code.is_codeword(witness),
                },
            )
            return

    if code.length > ctx.options.max_exhaustive_bits:
        yield rule.skip(
            ctx.loc(),
            f"exhaustive check needs 2^{code.length} input vectors "
            f"(cutoff 2^{ctx.options.max_exhaustive_bits}); no affine "
            "shortcut applies",
        )
        return
    reported = 0
    for vec in all_bit_vectors(code.length):
        indication = tuple(checker.indication(vec))
        valid = indication_valid(indication)
        if valid != code.is_codeword(vec):
            yield rule.finding(
                ctx.loc(),
                (
                    "checker accepts a non-code word"
                    if valid
                    else "checker rejects a code word"
                ),
                counterexample={
                    "word": list(vec),
                    "indication": list(indication),
                    "is_codeword": code.is_codeword(vec),
                },
            )
            reported += 1
            if reported >= 5:
                yield rule.skip(
                    ctx.loc(),
                    "more misclassified words exist; reporting stopped "
                    "after 5 counterexamples",
                )
                return


def _sample_code_words(
    code, cap: int
) -> Tuple[List[tuple], Optional[List[tuple]]]:
    """(sample, full word list or None when too large to materialise).

    Detection by any subset of code words is conclusive in the positive
    direction, so the sample only needs to be deterministic and spread.
    """
    cardinality = code.cardinality()
    if cardinality <= 4096:
        words = [tuple(w) for w in code.words()]
        if len(words) <= cap:
            return words, words
        step = max(1, len(words) // cap)
        return words[::step][:cap], words
    if hasattr(code, "word_at"):
        step = max(1, cardinality // cap)
        return (
            [tuple(code.word_at(i)) for i in range(0, cardinality, step)][
                :cap
            ],
            None,
        )
    return [tuple(w) for w in islice(code.words(), cap)], None


@rule(
    "tsc-self-testing",
    "checker",
    severity="error",
    summary="every internal stuck-at is signalled by some code word",
)
def _check_self_testing(
    checker: Checker, ctx: Context, rule: LintRule
) -> Iterable[object]:
    code = derive_code(checker, ctx)
    if code is None:
        yield rule.skip(
            ctx.loc(), "cannot derive the observed code for this checker"
        )
        return
    mismatch = _width_mismatch(checker, code, ctx, rule)
    if mismatch is not None:
        yield mismatch
        return
    circuit, reason = realization(checker)
    if circuit is None:
        yield rule.skip(ctx.loc(), reason)
        return
    faults = enumerate_stuck_at_faults(circuit)

    # symbolic proof: in an affine circuit a fault at (net, v) is
    # detected iff the net can take value ¬v on the code space AND the
    # flip lands on exactly one rail (both rails flipping keeps the
    # indication valid)
    code_form = _affine_code_form(code)
    forms = _affine_forms(circuit) if code_form is not None else None
    if forms is not None and len(circuit.output_nets) == 2:
        sens = _affine_sensitivity(circuit)
        code_mask, code_const = code_form
        silent = 0
        for fault in faults:
            net, value = fault.key()[1], fault.key()[2]
            s1, s2 = sens[net]
            mask, const = forms[net]
            if mask == 0:
                reachable = {const}
            elif mask == code_mask:
                reachable = {code_const ^ const}
            else:
                reachable = {0, 1}
            excitable = (1 - value) in reachable
            if excitable and (s1 ^ s2) == 1:
                continue  # detected: exactly one rail flips
            if not excitable or (s1 | s2) == 0:
                silent += 1  # faulty response == fault-free response
                continue
            yield rule.finding(
                ctx.loc(),
                "stuck-at fault flips both rails at once on some code "
                "word — the indication stays valid, the fault stays "
                "latent (symbolic GF(2) refutation)",
                counterexample={"fault": list(fault.key())},
            )
        if silent:
            yield rule.skip(
                ctx.loc(),
                f"{silent} structurally silent fault(s) excluded: the "
                "faulty checker is indistinguishable from the fault-free "
                "one on every code word (untestable redundancy)",
            )
        return

    gates = max(circuit.num_gates, 1)
    sample, full = _sample_code_words(
        code, ctx.options.self_testing_sample
    )
    budget = ctx.options.max_property_cost
    if len(faults) * len(sample) * gates > budget:
        yield rule.skip(
            ctx.loc(),
            f"{len(faults)} faults x {len(sample)} words x {gates} gates "
            f"exceeds the property budget ({budget})",
        )
        return
    missed = undetected_checker_faults(circuit, sample, faults)
    if not missed:
        return  # detection by a subset proves detection by the full set
    if full is not None and len(missed) * len(full) * gates <= budget:
        golden = [tuple(circuit.evaluate(list(w))) for w in full]
        silent = 0
        for fault in undetected_checker_faults(circuit, full, missed):
            witness = None
            for word, good in zip(full, golden):
                out = tuple(circuit.evaluate(list(word), faults=(fault,)))
                if out != good:
                    witness = (word, out)
                    break
            if witness is None:
                # the fault never changes any code-word response: an
                # untestable redundancy, not a self-testing violation
                silent += 1
                continue
            yield rule.finding(
                ctx.loc(),
                f"stuck-at fault is never signalled by any of the "
                f"{len(full)} code words but flips both rails on one — "
                "the indication stays valid, the fault stays latent",
                counterexample={
                    "fault": list(fault.key()),
                    "word": list(witness[0]),
                    "indication": list(witness[1]),
                },
            )
        if silent:
            yield rule.skip(
                ctx.loc(),
                f"{silent} structurally silent fault(s) excluded: the "
                "faulty checker is indistinguishable from the fault-free "
                "one on every code word (untestable redundancy)",
            )
        return
    yield rule.skip(
        ctx.loc(),
        f"{len(missed)} fault(s) undetected by a {len(sample)}-word "
        "sample and the full code is too large to enumerate — "
        "inconclusive",
    )


# -- decoder rules ------------------------------------------------------------


@rule(
    "decoder-consistency",
    "decoder",
    severity="error",
    summary="the ROM realises exactly the mapping's programming",
)
def _check_decoder_consistency(
    decoder: CheckedDecoder, ctx: Context, rule: LintRule
) -> Iterable[object]:
    table = decoder.mapping.table()
    rows = decoder.matrix.rows
    if len(rows) != len(table):
        yield rule.finding(
            ctx.loc(),
            f"ROM has {len(rows)} programmed rows, mapping defines "
            f"{len(table)}",
        )
        return
    for address, (programmed, expected) in enumerate(zip(rows, table)):
        if tuple(programmed) != tuple(expected):
            yield rule.finding(
                ctx.loc(f"address {address}"),
                "ROM row disagrees with the mapping's code word",
                counterexample={
                    "address": address,
                    "programmed": list(programmed),
                    "expected": list(expected),
                },
            )
            return
    # spot-check the gate-level realisation on a stride of addresses
    num_addresses = 1 << decoder.n
    step = max(1, num_addresses // 64)
    for address in range(0, num_addresses, step):
        word = decoder.rom_word(address)
        if tuple(word) != tuple(table[address]):
            yield rule.finding(
                ctx.loc(f"address {address}"),
                "gate-level ROM output disagrees with the programmed row",
                counterexample={
                    "address": address,
                    "evaluated": list(word),
                    "programmed": list(table[address]),
                },
            )
            return


@rule(
    "tsc-fault-secure",
    "decoder",
    severity="error",
    summary="internal faults never yield an incorrect-but-code ROM word",
)
def _check_fault_secure(
    decoder: CheckedDecoder, ctx: Context, rule: LintRule
) -> Iterable[object]:
    mapping = decoder.mapping
    code = getattr(mapping, "code", None)
    if code is None:
        yield rule.skip(
            ctx.loc(), "mapping carries no code to judge ROM words against"
        )
        return
    num_addresses = 1 << mapping.n_bits
    if mapping.num_words_used < num_addresses:
        yield rule.skip(
            ctx.loc(),
            f"mapping aliases {num_addresses} lines onto "
            f"{mapping.num_words_used} code words — escapes of "
            "probability ~1/a are the paper's design point, covered by "
            "the latency analysis, not fault-secureness",
        )
        return
    circuit = decoder.circuit
    faults = enumerate_stuck_at_faults(circuit, include_inputs=False)
    cost = len(faults) * num_addresses * max(circuit.num_gates, 1)
    if cost > ctx.options.max_property_cost:
        yield rule.skip(
            ctx.loc(),
            f"{len(faults)} faults x {num_addresses} addresses x "
            f"{circuit.num_gates} gates exceeds the property budget "
            f"({ctx.options.max_property_cost})",
        )
        return
    lines = 1 << decoder.n
    golden = [tuple(decoder.rom_word(a)) for a in range(num_addresses)]
    for fault in faults:
        for address in range(num_addresses):
            bits = [(address >> i) & 1 for i in range(decoder.n)]
            outs = circuit.evaluate(bits, faults=(fault,))
            word = tuple(outs[lines:])
            if word != golden[address] and code.is_codeword(word):
                yield rule.finding(
                    ctx.loc(),
                    "a single internal stuck-at produces an incorrect "
                    "ROM word that is still a code word — the checker "
                    "cannot see it",
                    counterexample={
                        "fault": list(fault.key()),
                        "address": address,
                        "output": list(word),
                        "expected": list(golden[address]),
                    },
                )
                return


# -- design rules -------------------------------------------------------------


def _axes(memory: SelfCheckingMemory):
    return (
        ("row", memory.row, memory.row_checker),
        ("column", memory.column, memory.column_checker),
    )


@rule(
    "design-checker-width",
    "design",
    severity="error",
    summary="every checker's width matches what it observes",
)
def _check_design_widths(
    memory: SelfCheckingMemory, ctx: Context, rule: LintRule
) -> Iterable[object]:
    for axis, decoder, checker in _axes(memory):
        if checker.input_width != decoder.mapping.rom_width:
            yield rule.finding(
                ctx.loc(f"{axis} checker"),
                f"checker observes {checker.input_width} bits but the "
                f"{axis} ROM emits {decoder.mapping.rom_width}",
                hint="build the checker from the mapping's rom_width",
            )
    word_width = memory.ram.word_width
    if memory.parity_checker.input_width != word_width:
        yield rule.finding(
            ctx.loc("parity checker"),
            f"checker observes {memory.parity_checker.input_width} bits "
            f"but the data path carries {word_width}",
        )


@rule(
    "design-placement",
    "design",
    severity="error",
    summary="checkers accept every emitted ROM word and reject sentinels",
)
def _check_design_placement(
    memory: SelfCheckingMemory, ctx: Context, rule: LintRule
) -> Iterable[object]:
    for axis, decoder, checker in _axes(memory):
        mapping = decoder.mapping
        if checker.input_width != mapping.rom_width:
            continue  # design-checker-width already reports this
        if hasattr(mapping, "words_emitted"):
            words = mapping.words_emitted()
        else:
            num_addresses = 1 << mapping.n_bits
            step = max(1, num_addresses // ctx.options.placement_sample)
            words = {
                tuple(mapping.codeword(a))
                for a in range(0, num_addresses, step)
            }
        for word in words:
            if not indication_valid(checker.indication(word)):
                yield rule.finding(
                    ctx.loc(f"{axis} checker"),
                    "checker rejects a code word the mapping emits in "
                    "fault-free operation",
                    counterexample={"word": list(word)},
                )
                break
        # the two canonical decoder-fault observations must be non-code:
        # no line selected reads all-1s, merged distinct lines lose weight
        width = mapping.rom_width
        for sentinel, cause in (
            ((1,) * width, "no word line selected (stuck-at-0)"),
            ((0,) * width, "every ROM column discharged"),
        ):
            if indication_valid(checker.indication(sentinel)):
                yield rule.finding(
                    ctx.loc(f"{axis} checker"),
                    f"checker accepts the {cause} sentinel — those "
                    "decoder faults would never be detected",
                    counterexample={"word": list(sentinel)},
                )


@rule(
    "design-coverage",
    "design",
    severity="error",
    summary="every array segment is observed by a checker",
)
def _check_design_coverage(
    memory: SelfCheckingMemory, ctx: Context, rule: LintRule
) -> Iterable[object]:
    org = memory.organization
    for axis, decoder, _checker in _axes(memory):
        need = org.p if axis == "row" else org.s
        if decoder.mapping.n_bits != need:
            yield rule.finding(
                ctx.loc(f"{axis} decoder"),
                f"decoder covers {decoder.mapping.n_bits} address bits "
                f"but the organization drives {need}",
            )
    if memory.ram.parity_code is None:
        yield rule.finding(
            ctx.loc("data path"),
            "the array stores no check bits — data-path faults are "
            "unobservable by any checker",
            hint="build the RAM with with_parity=True",
        )
    elif memory.ram.word_width != org.bits + 1:
        yield rule.finding(
            ctx.loc("data path"),
            f"array words are {memory.ram.word_width} bits, expected "
            f"{org.bits} data + 1 parity",
        )
