"""Suite/spec rules: cells that can never run, colliding store keys,
and provenance completeness.

These rules look at a :class:`~repro.suite.spec.SuiteSpec` *before* the
runner touches it.  ``MatrixBlock`` construction already validates
population and workload names eagerly, so on freshly loaded specs the
name rules act as a second line of defence (a population unregistered
after the spec was built, a spec object mutated in place); the
duplicate-cell and provenance rules report what eager validation cannot
know — relationships *between* cells and reproducibility hygiene.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.base import Context, LintRule, rule
from repro.suite.spec import SPEC_TARGET_FAMILIES, SuiteSpec

__all__ = []


def _cell_loc(ctx: Context, cell) -> str:
    return ctx.loc(f"cell {cell.cell_id}")


@rule(
    "suite-population",
    "suite",
    severity="error",
    summary="every campaign cell names a registered scenario population",
)
def _check_populations(
    suite: SuiteSpec, ctx: Context, rule: LintRule
) -> Iterable[object]:
    from repro.suite.populations import POPULATIONS

    for cell in suite.cells():
        if cell.family == "design" or cell.scenarios is None:
            continue
        name = cell.scenarios.get("population")
        if name not in POPULATIONS:
            yield rule.finding(
                _cell_loc(ctx, cell),
                f"scenario population {name!r} is not registered — the "
                f"cell can never run; known: {POPULATIONS.names()}",
                hint="register it with POPULATIONS.register or fix the "
                "name",
            )


@rule(
    "suite-workload",
    "suite",
    severity="error",
    summary="every workload reference resolves to a known name",
)
def _check_workloads(
    suite: SuiteSpec, ctx: Context, rule: LintRule
) -> Iterable[object]:
    from repro.suite.spec import _validate_workload

    for cell in suite.cells():
        try:
            _validate_workload(cell.workload, cell.cell_id)
        except ValueError as exc:
            yield rule.finding(
                _cell_loc(ctx, cell), f"{exc} — the cell can never run"
            )


@rule(
    "suite-engine",
    "suite",
    severity="error",
    summary="every engine policy names an available campaign engine",
)
def _check_engines(
    suite: SuiteSpec, ctx: Context, rule: LintRule
) -> Iterable[object]:
    from repro.faultsim import resolve_engine

    for cell in suite.cells():
        engine = cell.policy.get("engine")
        if engine is None:
            continue
        try:
            resolve_engine(engine)
        except ValueError as exc:
            yield rule.finding(
                _cell_loc(ctx, cell), f"{exc} — the cell can never run"
            )
        except RuntimeError as exc:
            yield rule.finding(
                _cell_loc(ctx, cell),
                f"engine policy unavailable in this environment: {exc}",
                hint="use engine='auto' to fall back when NumPy is "
                "missing",
            )


@rule(
    "suite-target",
    "suite",
    severity="error",
    summary="every cell target builds a valid design spec / organisation",
)
def _check_targets(
    suite: SuiteSpec, ctx: Context, rule: LintRule
) -> Iterable[object]:
    from repro.design.spec import DesignSpec
    from repro.memory.organization import MemoryOrganization

    seen = set()
    for cell in suite.cells():
        material = json.dumps(
            (cell.family in SPEC_TARGET_FAMILIES, cell.target),
            sort_keys=True,
        )
        if material in seen:
            continue
        seen.add(material)
        try:
            if cell.family in SPEC_TARGET_FAMILIES:
                DesignSpec.from_dict(cell.target)
            else:
                MemoryOrganization(**cell.target)
        except (TypeError, ValueError) as exc:
            yield rule.finding(
                _cell_loc(ctx, cell),
                f"target does not build: {exc}",
            )


@rule(
    "suite-duplicate",
    "suite",
    severity="warning",
    summary="no two cells collide on one result-store key",
)
def _check_duplicates(
    suite: SuiteSpec, ctx: Context, rule: LintRule
) -> Iterable[object]:
    groups: dict = {}
    for cell in suite.cells():
        material = json.dumps(
            {
                "family": cell.family,
                "target": cell.target,
                "workload": cell.workload,
                "scenarios": cell.scenarios,
                "policy": cell.policy,
            },
            sort_keys=True,
        )
        groups.setdefault(material, []).append(cell.cell_id)
    for cell_ids in groups.values():
        if len(cell_ids) > 1:
            yield rule.finding(
                ctx.loc(f"cell {cell_ids[0]}"),
                f"{len(cell_ids)} cells share identical campaign "
                "material and collide on one store key — all but the "
                "first are redundant re-runs",
                hint="drop the duplicates or vary an axis",
                counterexample={"cells": cell_ids},
            )


@rule(
    "suite-provenance",
    "suite",
    severity="warning",
    summary="named workloads pin cycles and seed for reproducibility",
)
def _check_provenance(
    suite: SuiteSpec, ctx: Context, rule: LintRule
) -> Iterable[object]:
    for cell in suite.cells():
        workload = cell.workload
        if workload is None or "family" not in workload:
            continue  # pinned Workload dicts / march tests carry it all
        if workload.get("family") == "march":
            continue  # stream length is fixed by the algorithm
        missing = [
            key for key in ("cycles", "seed") if key not in workload
        ]
        if missing:
            yield rule.finding(
                _cell_loc(ctx, cell),
                f"workload family {workload['family']!r} leaves "
                f"{missing} to run-time defaults — the provenance stamp "
                "cannot distinguish re-runs under changed defaults",
                hint="pin cycles and seed in the workload dict",
            )
