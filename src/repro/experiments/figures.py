"""ASCII renderings of the reproduction's data "figures".

The paper itself has no data plots (its figures are block diagrams), but
a modern writeup of the same results would show two curves.  These
renderers produce them as plain text so benches, CI logs and the CLI can
display them without any plotting dependency:

* the **trade-off curve** — area overhead vs tolerated detection latency
  (the content of Table 1 as a curve, per RAM size);
* the **survival curve** — fraction of faults still undetected after c
  cycles, measured vs analytic (the content of X1).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_plot", "tradeoff_figure", "survival_figure"]


def ascii_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
) -> str:
    """Render one or more (x, y) series as an ASCII scatter/step plot.

    Each series gets a marker (``*``, ``o``, ``+``, ``x`` in order);
    overlapping points show the later series' marker.
    """
    import math

    markers = "*o+x#@"
    points = [(name, pts) for name, pts in series.items() if pts]
    if not points:
        raise ValueError("nothing to plot")

    def tx(x: float) -> float:
        return math.log10(x) if logx else x

    xs = [tx(x) for _, pts in points for x, _ in pts]
    ys = [y for _, pts in points for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(points):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = int((tx(x) - x_lo) / x_span * (width - 1))
            row = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    lines.append(f"{y_label} (top={y_hi:g}, bottom={y_lo:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {('log10 ' if logx else '')}{x_lo:g} .. {x_hi:g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, (name, _) in enumerate(points)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def tradeoff_figure(
    cs: Sequence[int] = (1, 2, 3, 5, 8, 10, 15, 20, 30, 40, 60, 100),
    pndc: float = 1e-9,
) -> str:
    """Area-vs-latency curve for the three paper RAMs (Table 1 as a plot)."""
    from repro.core.tradeoff import TradeoffExplorer
    from repro.memory.organization import PAPER_ORGS

    series: Dict[str, List[Tuple[float, float]]] = {}
    for org in PAPER_ORGS:
        explorer = TradeoffExplorer(org)
        series[org.label()] = [
            (float(pt.c), pt.overhead_percent)
            for pt in explorer.sweep_latency(cs, pndc)
        ]
    return ascii_plot(
        series,
        x_label="tolerated detection latency c (cycles)",
        y_label="decoder-check area overhead %",
        logx=True,
    )


def survival_figure(n_bits: int = 6, cycles: int = 400, seed: int = 7) -> str:
    """Measured vs analytic escape fraction (X1 as a plot)."""
    from repro.experiments.latency_empirical import run_latency_experiment

    experiment = run_latency_experiment(
        n_bits=n_bits, cycles=cycles, seed=seed
    )
    measured = [
        (float(c), m) for c, (m, _) in sorted(experiment.curve.items())
    ]
    analytic = [
        (float(c), a) for c, (_, a) in sorted(experiment.curve.items())
    ]
    return ascii_plot(
        {"measured": measured, "analytic": analytic},
        x_label="cycles c",
        y_label="escape fraction",
        logx=True,
    )


def main() -> None:
    print("Trade-off curve (Pndc = 1e-9):\n")
    print(tradeoff_figure())
    print("\nSurvival curve (n=6 decoder, 3-out-of-5):\n")
    print(survival_figure())


if __name__ == "__main__":
    main()
