"""Shared fixtures for the experiment regenerators: the paper's reported
numbers (for side-by-side printing) and small formatting helpers."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.codes.m_out_of_n import MOutOfNCode
from repro.memory.organization import PAPER_ORGS

__all__ = [
    "TABLE1_PAPER",
    "TABLE2_PAPER",
    "ORG_LABELS",
    "parse_code_name",
    "format_table",
    "record_campaign_stats",
    "open_store",
]


def open_store(store):
    """Normalise an experiment's ``store=`` argument (``None`` / path /
    store object) — so every experiment accepts the CLI's ``--store
    PATH`` and API callers' store objects alike."""
    from repro.results import ResultStore

    return ResultStore.coerce(store)


def record_campaign_stats(
    stats: Dict[str, object],
    engine: str,
    faults: int,
    wall_time_s: float,
    **extra: object,
) -> None:
    """Refresh a module's ``LAST_CAMPAIGN_STATS`` in place.

    The CLI's ``--json`` surfaces this dict as the ``campaign`` payload
    for engine-aware experiment commands (including the result-store
    hit/miss counters under ``store`` when one was configured).
    """
    stats.clear()
    stats.update(
        engine=engine,
        faults=faults,
        wall_time_s=round(wall_time_s, 6),
        faults_per_sec=(
            round(faults / wall_time_s, 2) if wall_time_s > 0 else 0.0
        ),
        **extra,
    )

#: Table (1): Pndc = 1e-9, c swept.  code name -> (16x2K, 32x4K, 64x8K) %.
TABLE1_PAPER: Dict[int, Tuple[str, Tuple[float, float, float]]] = {
    2: ("9-out-of-18", (88.7, 49.35, 26.28)),
    5: ("5-out-of-9", (44.35, 24.6, 13.14)),
    10: ("3-out-of-5", (24.8, 13.7, 7.3)),
    20: ("2-out-of-4", (19.5, 9.67, 5.84)),
    30: ("2-out-of-3", (15.0, 8.2, 4.38)),
    40: ("1-out-of-2", (9.7, 5.48, 2.92)),
}

#: Table (2): c = 10, Pndc swept.
TABLE2_PAPER: Dict[float, Tuple[str, Tuple[float, float, float]]] = {
    1e-2: ("1-out-of-2", (9.7, 5.4, 2.92)),
    1e-5: ("2-out-of-4", (19.5, 9.6, 5.84)),
    1e-9: ("3-out-of-5", (24.8, 13.7, 7.3)),
    1e-15: ("4-out-of-7", (34.2, 19.1, 10.2)),
    1e-20: ("5-out-of-9", (44.35, 24.67, 13.14)),
    1e-30: ("7-out-of-13", (63.5, 35.6, 18.9)),
}

ORG_LABELS: Tuple[str, ...] = tuple(org.label() for org in PAPER_ORGS)


def parse_code_name(name: str) -> MOutOfNCode:
    """'3-out-of-5' -> MOutOfNCode(3, 5).

    >>> parse_code_name('3-out-of-5').cardinality()
    10
    """
    parts = name.split("-out-of-")
    if len(parts) != 2:
        raise ValueError(f"cannot parse code name {name!r}")
    return MOutOfNCode(int(parts[0]), int(parts[1]))


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text aligned table (the benches print with this)."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
