"""E5 — regenerate the §IV worked area example (analytic model).

"For a RAM having 1K words of 16 bits and a 1-out-of-8 column
multiplexing, considering k = 0.3 and using the 3-out-of-5 code for both
decoders, the area overhead will be 1.9 %.  [...] 6.25 % for the parity
bit and 0.15 % for the parity checker, resulting on a total area overhead
of 8.3 %."

Our faithful evaluation of the printed formula gives 1.24 % for the ROMs
(the 1.9 % in the text is not reproducible from the formula as printed —
flagged in EXPERIMENTS.md); the parity-bit and parity-checker terms match
exactly, and the qualitative point (decoder checking costs a fraction of
the mandatory parity bit) stands.

Run: ``python -m repro.experiments.area_example``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.area.model import AreaBreakdown, PaperAreaModel
from repro.memory.organization import MemoryOrganization

__all__ = ["AreaExample", "generate_area_example", "main"]

PAPER_ROM_PERCENT = 1.9
PAPER_PARITY_BIT_PERCENT = 6.25
PAPER_PARITY_CHECKER_PERCENT = 0.15
PAPER_TOTAL_PERCENT = 8.3


@dataclass
class AreaExample:
    breakdown: AreaBreakdown
    rom_percent: float
    parity_bit_percent: float
    parity_checker_percent: float
    total_percent: float


def generate_area_example() -> AreaExample:
    org = MemoryOrganization(words=1024, bits=16, column_mux=8)
    model = PaperAreaModel(k=0.3)
    breakdown = model.breakdown(org, r_row=5, r_column=5)
    return AreaExample(
        breakdown=breakdown,
        rom_percent=100 * (breakdown.rom_row + breakdown.rom_column),
        parity_bit_percent=100 * breakdown.parity_bit,
        parity_checker_percent=100 * breakdown.parity_checker,
        total_percent=100 * breakdown.total,
    )


def main() -> None:
    ex = generate_area_example()
    print("Section IV worked example: 1Kx16 RAM, mux 8, k=0.3, 3-out-of-5")
    print(
        f"  decoder-check ROMs : {ex.rom_percent:.2f} % "
        f"(paper text: {PAPER_ROM_PERCENT} % — formula as printed gives "
        f"ours; see EXPERIMENTS.md)"
    )
    print(
        f"  parity bit         : {ex.parity_bit_percent:.2f} % "
        f"(paper: {PAPER_PARITY_BIT_PERCENT} %)"
    )
    print(
        f"  parity checker     : {ex.parity_checker_percent:.2f} % "
        f"(paper: {PAPER_PARITY_CHECKER_PERCENT} %)"
    )
    print(
        f"  total              : {ex.total_percent:.2f} % "
        f"(paper: {PAPER_TOTAL_PERCENT} %)"
    )


if __name__ == "__main__":
    main()
