"""E1 — regenerate Table (1): hardware increase vs detection latency.

Sweep ``c`` in {2, 5, 10, 20, 30, 40} at ``Pndc = 1e-9``, select the code
per §III.2 (exact sizing policy), and report the std-cell area overhead
for the three §IV embedded RAMs, next to the paper's own code choice and
reported percentages.

Run: ``python -m repro.experiments.table1``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.area.stdcell import StdCellAreaModel
from repro.core.selection import (
    SelectionPolicy,
    evaluate_code,
    select_code,
)
from repro.experiments.common import (
    ORG_LABELS,
    TABLE1_PAPER,
    format_table,
    parse_code_name,
)
from repro.memory.organization import PAPER_ORGS

__all__ = ["Table1Row", "generate_table1", "render_table1", "main"]

PNDC_TARGET = 1e-9
C_VALUES = (2, 5, 10, 20, 30, 40)


@dataclass
class Table1Row:
    c: int
    our_code: str
    our_a: int
    our_pndc: float
    our_overheads: Tuple[float, ...]
    paper_code: str
    paper_code_pndc: float
    paper_overheads_model: Tuple[float, ...]
    paper_overheads_reported: Tuple[float, ...]

    @property
    def matches_paper(self) -> bool:
        return self.our_code == self.paper_code


def generate_table1(
    policy: SelectionPolicy = SelectionPolicy.EXACT,
    model: StdCellAreaModel = None,
) -> List[Table1Row]:
    model = model or StdCellAreaModel()
    rows: List[Table1Row] = []
    for c in C_VALUES:
        selection = select_code(c, PNDC_TARGET, policy=policy)
        ours = tuple(
            model.overhead_percent(org, r_row=selection.rom_width)
            for org in PAPER_ORGS
        )
        paper_name, paper_reported = TABLE1_PAPER[c]
        paper_code = parse_code_name(paper_name)
        paper_eval = evaluate_code(paper_code, c, PNDC_TARGET)
        paper_model = tuple(
            model.overhead_percent(org, r_row=paper_code.n)
            for org in PAPER_ORGS
        )
        rows.append(
            Table1Row(
                c=c,
                our_code=selection.code_name,
                our_a=selection.a_final,
                our_pndc=selection.achieved_pndc,
                our_overheads=ours,
                paper_code=paper_name,
                paper_code_pndc=paper_eval.achieved_pndc,
                paper_overheads_model=paper_model,
                paper_overheads_reported=paper_reported,
            )
        )
    return rows


def render_table1(rows: List[Table1Row] = None) -> str:
    rows = rows if rows is not None else generate_table1()
    headers = (
        ["c", "code (ours)", "a"]
        + [f"{label} %" for label in ORG_LABELS]
        + ["code (paper)"]
        + [f"{label} % (paper)" for label in ORG_LABELS]
    )
    body = []
    for row in rows:
        body.append(
            [row.c, row.our_code, row.our_a]
            + [f"{v:.2f}" for v in row.our_overheads]
            + [row.paper_code]
            + [f"{v:g}" for v in row.paper_overheads_reported]
        )
    title = (
        f"Table 1 — Pndc = {PNDC_TARGET:g}, c swept "
        f"(std-cell model, both decoders share the code)\n"
    )
    return title + format_table(headers, body)


def main(out: Optional[str] = None) -> None:
    """Print the table; ``out`` additionally writes it to a file."""
    rows = generate_table1()
    lines = [render_table1(rows)]
    mismatches = [r for r in rows if not r.matches_paper]
    if mismatches:
        lines.append(
            "\nRows where the exact sizing differs from the paper "
            "(ours meets the same Pndc spec at lower cost; see "
            "EXPERIMENTS.md):"
        )
        for row in mismatches:
            lines.append(
                f"  c={row.c}: ours {row.our_code} "
                f"(Pndc={row.our_pndc:.3g}) vs paper {row.paper_code} "
                f"(Pndc={row.paper_code_pndc:.3g})"
            )
    text = "\n".join(lines)
    print(text)
    if out is not None:
        with open(out, "w") as handle:
            handle.write(text + "\n")


if __name__ == "__main__":
    import sys

    main(out=sys.argv[1] if len(sys.argv) > 1 else None)
