"""X6 — baseline: would SEC-DED ECC on the data path subsume the scheme?

The industrial alternative to the paper's parity bit is a Hamming SEC-DED
code per word.  It costs log2-ish check bits instead of one, and it
*still does not cover decoder faults*: a stuck-at-1 merge returns the
bitwise AND of two stored words, a multi-bit error pattern that SEC-DED
was never designed for — it frequently miscorrects (silently delivers
wrong data while reporting success) or accepts.  This experiment
quantifies that, closing the loop on §II's argument that decoder checking
is a separate, necessary mechanism.

Run: ``python -m repro.experiments.ecc_baseline``
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.codes.hamming import HammingCode, hamming_check_bits
from repro.codes.parity import ParityCode

__all__ = [
    "EccMergeOutcome",
    "EccBaselineResult",
    "run_ecc_baseline",
    "storage_overhead_rows",
    "main",
]


@dataclass
class EccMergeOutcome:
    """Classification counts for decoder-merge words fed to a decoder."""

    trials: int
    #: decoder returned success with the *correct* victim data (merge was
    #: invisible because the words agreed)
    clean: int
    #: decoder flagged an uncorrectable error — the good outcome
    detected: int
    #: decoder silently returned WRONG data (accepted or miscorrected)
    silent_wrong: int

    @property
    def silent_wrong_fraction(self) -> float:
        return self.silent_wrong / self.trials if self.trials else 0.0

    @property
    def detected_fraction(self) -> float:
        return self.detected / self.trials if self.trials else 0.0


@dataclass
class EccBaselineResult:
    data_bits: int
    parity_overhead: float
    secded_overhead: float
    secded_merge: EccMergeOutcome
    parity_merge_detected_fraction: float


def _merge_outcome_secded(
    code: HammingCode, pairs: List[Tuple[Tuple[int, ...], Tuple[int, ...]]]
) -> EccMergeOutcome:
    clean = detected = silent_wrong = 0
    for data_a, data_b in pairs:
        word_a = code.encode(data_a)
        word_b = code.encode(data_b)
        merged = tuple(x & y for x, y in zip(word_a, word_b))
        result = code.decode(merged)
        if result.detected_uncorrectable:
            detected += 1
        elif result.data == data_b:
            # the victim's data came through intact
            clean += 1
        else:
            silent_wrong += 1
    return EccMergeOutcome(
        trials=len(pairs),
        clean=clean,
        detected=detected,
        silent_wrong=silent_wrong,
    )


def _merge_detected_parity(
    code: ParityCode, pairs: List[Tuple[Tuple[int, ...], Tuple[int, ...]]]
) -> float:
    """Fraction of merges the *data-path parity alone* happens to catch.

    This is what the data path contributes without the decoder ROMs —
    deliberately not the full scheme (the ROMs catch the merge at the
    decoder, before data is even considered).
    """
    detected = 0
    changed = 0
    for data_a, data_b in pairs:
        word_a = code.encode(data_a)
        word_b = code.encode(data_b)
        merged = tuple(x & y for x, y in zip(word_a, word_b))
        if merged == word_b:
            continue  # invisible merge: words agreed where it mattered
        changed += 1
        if not code.is_codeword(merged):
            detected += 1
    return detected / changed if changed else 1.0


def run_ecc_baseline(
    data_bits: int = 16, trials: int = 2000, seed: int = 17
) -> EccBaselineResult:
    rng = random.Random(seed)
    pairs = []
    for _ in range(trials):
        a = tuple(rng.randint(0, 1) for _ in range(data_bits))
        b = tuple(rng.randint(0, 1) for _ in range(data_bits))
        if a == b:
            b = tuple(bit ^ 1 for bit in b)
        pairs.append((a, b))

    secded = HammingCode(data_bits, extended=True)
    parity = ParityCode(data_bits)
    return EccBaselineResult(
        data_bits=data_bits,
        parity_overhead=1.0 / data_bits,
        secded_overhead=(hamming_check_bits(data_bits) + 1) / data_bits,
        secded_merge=_merge_outcome_secded(secded, pairs),
        parity_merge_detected_fraction=_merge_detected_parity(parity, pairs),
    )


def storage_overhead_rows() -> List[Tuple[int, float, float]]:
    """(data bits, parity overhead, SEC-DED overhead) for the table sizes."""
    rows = []
    for bits in (16, 32, 64):
        rows.append(
            (
                bits,
                100.0 / bits,
                100.0 * (hamming_check_bits(bits) + 1) / bits,
            )
        )
    return rows


def main() -> None:
    print("X6 — SEC-DED baseline vs the paper's parity + decoder ROMs\n")
    print("storage overhead of the data-path code:")
    for bits, parity_pct, secded_pct in storage_overhead_rows():
        print(
            f"  {bits:2d}-bit words: parity {parity_pct:.2f} % vs "
            f"SEC-DED {secded_pct:.2f} %"
        )
    result = run_ecc_baseline()
    merge = result.secded_merge
    print(
        f"\ndecoder-merge behaviour ({merge.trials} random word pairs, "
        f"{result.data_bits}-bit data):"
    )
    print(
        f"  SEC-DED: detected {merge.detected_fraction:.1%}, "
        f"silent wrong data {merge.silent_wrong_fraction:.1%}"
    )
    print(
        f"  bare parity (no ROMs): detects {result.parity_merge_detected_fraction:.1%}"
        f" of visible merges"
    )
    print(
        "  paper's scheme: the ROM + unordered code flags the merge at "
        "the decoder\n  whenever the two lines carry different code words "
        "(prob 1 - 1/a per access),\n  independent of the stored data."
    )


if __name__ == "__main__":
    main()
