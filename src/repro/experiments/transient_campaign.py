"""X6 — transient-upset detection latency across workload families.

The on-line claim, measured: single-event upsets strike a
parity-protected RAM under live traffic, and detection latency is set by
the *workload*, not the code — uniform traffic gives a geometric
time-to-next-read, sequential and scrubbed traffic bound it hard, and
bursty traffic fattens the tail.  A final row shows a double upset in
one word escaping the single parity bit entirely (error observed, never
detected) — the known limit SEC-DED exists for.

Campaigns run through :class:`repro.scenarios.CampaignEngine`
(``engine="packed"`` default: upsets as time-varying lane masks;
``engine="serial"`` is the per-cycle oracle).

Run: ``python -m repro.experiments.transient_campaign``
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import (
    format_table,
    open_store,
    record_campaign_stats,
)
from repro.faultsim.transient import TransientUpset
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.scenarios import (
    CampaignEngine,
    TransientScenario,
    Workload,
)

__all__ = [
    "TransientWorkloadRow",
    "run_transient_experiment",
    "generate_transient_rows",
    "main",
]

WORDS = 256
BITS = 8
CYCLES = 2048
SEED = 5


@dataclass
class TransientWorkloadRow:
    """Detection summary of one workload family against one upset set."""

    workload: str
    upsets: int
    detected: int
    #: mean / worst cycles from strike to the parity flag
    mean_latency: Optional[float]
    worst_latency: Optional[int]
    undetected: int


def _ram() -> BehavioralRAM:
    return BehavioralRAM(
        MemoryOrganization(words=WORDS, bits=BITS, column_mux=8)
    )


def _workloads(cycles: int, seed: int) -> Dict[str, Workload]:
    return {
        "uniform": Workload.uniform(WORDS, cycles, seed=seed),
        "sequential": Workload.sequential(WORDS, cycles),
        "bursty": Workload.bursty(WORDS, cycles, locality=16, seed=seed),
        "scrubbed 1/8": Workload.scrubbed(
            WORDS, cycles, scrub_period=8, seed=seed
        ),
        "scrubbed 1/2": Workload.scrubbed(
            WORDS, cycles, scrub_period=2, seed=seed
        ),
    }


def _scenarios() -> List[TransientScenario]:
    return [
        TransientScenario.single(address, bit=address % BITS, cycle=16)
        for address in range(0, WORDS, 5)
    ]


def run_transient_experiment(
    cycles: int = CYCLES,
    seed: int = SEED,
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> List[TransientWorkloadRow]:
    """One upset population, every workload family, one engine."""
    driver = CampaignEngine(
        engine=engine, workers=workers, store=open_store(store), cache=cache
    )
    scenarios = _scenarios()
    rows: List[TransientWorkloadRow] = []
    for label, workload in _workloads(cycles, seed).items():
        result = driver.transient(_ram(), scenarios, workload)
        # strike cycles come from the scenario list (zip by position):
        # store-served records carry the printable fault identity, not
        # the live scenario object
        latencies = [
            record.first_detection - scenario.cycle
            for scenario, record in zip(scenarios, result.records)
            if record.first_detection is not None
        ]
        rows.append(
            TransientWorkloadRow(
                workload=label,
                upsets=result.total,
                detected=result.detected,
                mean_latency=(
                    sum(latencies) / len(latencies) if latencies else None
                ),
                worst_latency=max(latencies) if latencies else None,
                undetected=result.total - result.detected,
            )
        )
    # the parity escape: two flips in one word restore the code word
    double = TransientScenario(
        upsets=(
            TransientUpset(address=7, bit=1, cycle=16),
            TransientUpset(address=7, bit=4, cycle=16),
        )
    )
    result = driver.transient(
        _ram(), [double], Workload.uniform(WORDS, cycles, seed=seed)
    )
    record = result.records[0]
    rows.append(
        TransientWorkloadRow(
            workload="uniform, double upset",
            upsets=1,
            detected=result.detected,
            mean_latency=None,
            worst_latency=None,
            undetected=(
                1 if record.first_error is not None and not record.detected
                else 0
            ),
        )
    )
    return rows


#: stats of the most recent main() run, surfaced by the CLI's --json
LAST_CAMPAIGN_STATS: Dict[str, object] = {}


def generate_transient_rows(
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> List[TransientWorkloadRow]:
    """Structured rows for the CLI's ``--json`` (same engine selection
    as the printed run)."""
    return run_transient_experiment(
        engine=engine, workers=workers, store=store, cache=cache
    )


def main(
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> None:
    store = open_store(store)
    start = time.perf_counter()
    rows = run_transient_experiment(
        engine=engine, workers=workers, store=store, cache=cache
    )
    extra = {"cycles": CYCLES}
    if store is not None:
        extra["store"] = store.stats.to_dict()
    record_campaign_stats(
        LAST_CAMPAIGN_STATS,
        engine,
        sum(row.upsets for row in rows),
        time.perf_counter() - start,
        **extra,
    )
    print(
        f"X6 — transient upsets under live traffic "
        f"({WORDS}x{BITS} parity RAM, {CYCLES} cycles, {engine} engine)"
    )
    table_rows = [
        [
            row.workload,
            row.upsets,
            row.detected,
            "-" if row.mean_latency is None else f"{row.mean_latency:.1f}",
            "-" if row.worst_latency is None else row.worst_latency,
            row.undetected,
        ]
        for row in rows
    ]
    print(
        format_table(
            ["workload", "upsets", "detected", "mean lat", "worst lat",
             "missed"],
            table_rows,
        )
    )
    print(
        "\nscrubbing converts the heavy uniform tail into a hard bound; "
        "the double-upset row\nis the single-parity-bit escape "
        "(error observed, never detected)."
    )


if __name__ == "__main__":
    main()
