"""X4/X5 — ablations of the two design choices DESIGN.md calls out.

X4 (odd ``a``): replace the odd modulus with an even one.  ``gcd(2^j, a)``
then exceeds 1 for every block at offset ``j >= 1``, collapsing the
effective modulus and — in the extreme ``a = 2^(n-k)`` of the §III.1
preliminary construction — leaving the high-bit sub-decoder entirely
unchecked (infinite latency).  We measure coverage with the truncated
Berger mapping versus the final mod-a mapping on the same decoder.

X5 (unordered code): program the ROM with a *systematic, ordered* code of
the same width (address low bits + pad).  Stuck-at-1 merges then produce
ANDs of code words that can themselves be code words, and stuck-at-0's
all-1s output can even be a code word — silent escapes the unordered
property rules out.  We count them.

Run: ``python -m repro.experiments.ablations``
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.checkers.base import Checker
from repro.checkers.berger_checker import BergerChecker
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.base import BitVector
from repro.codes.m_out_of_n import MOutOfNCode
from repro.codes.unordered import and_of_distinct_words_is_noncode
from repro.core.mapping import (
    AddressMapping,
    TruncatedBergerMapping,
    mapping_for_code,
)
from repro.decoder.analysis import analyze_decoder
from repro.experiments.common import open_store, record_campaign_stats
from repro.faultsim.injector import decoder_fault_list
from repro.scenarios import CampaignEngine, Workload
from repro.rom.nor_matrix import CheckedDecoder

__all__ = [
    "OddAAblation",
    "run_odd_a_ablation",
    "UnorderedAblation",
    "run_unordered_ablation",
    "main",
]


@dataclass
class OddAAblation:
    n_bits: int
    coverage_mod_a: float
    coverage_truncated_berger: float
    #: analytically-blind stuck-at-1 sites under the even-modulus mapping
    blind_sites_berger: int
    blind_sites_mod_a: int
    #: faults simulated across both campaigns
    faults: int = 0


def run_odd_a_ablation(
    n_bits: int = 6,
    k: int = 2,
    cycles: int = 300,
    seed: int = 3,
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> OddAAblation:
    """Same decoder, two ROM programmings: final mod-a vs §III.1 truncated."""
    code = MOutOfNCode(3, 5)
    good_mapping = mapping_for_code(code, n_bits)
    bad_mapping = TruncatedBergerMapping(n_bits, k=k)

    driver = CampaignEngine(
        engine=engine, workers=workers, store=open_store(store), cache=cache
    )
    addresses = Workload.uniform(1 << n_bits, cycles, seed=seed)
    coverages: List[float] = []
    blind_counts: List[int] = []
    total_faults = 0
    for mapping, checker in (
        (good_mapping, MOutOfNChecker(code.m, code.n, structural=False)),
        (bad_mapping, BergerChecker(bad_mapping.info_bits)),
    ):
        checked = CheckedDecoder(mapping)
        faults = decoder_fault_list(checked)
        result = driver.decoder(
            checked, checker, faults, addresses, attach_analytic=False
        )
        total_faults += len(faults)
        coverages.append(result.coverage)
        analysis = analyze_decoder(checked.tree, mapping)
        blind_counts.append(
            sum(
                1
                for s in analysis.sa1_sites
                if s.escape_per_cycle == 1
            )
        )
    return OddAAblation(
        n_bits=n_bits,
        coverage_mod_a=coverages[0],
        coverage_truncated_berger=coverages[1],
        blind_sites_mod_a=blind_counts[0],
        blind_sites_berger=blind_counts[1],
        faults=total_faults,
    )


class _OrderedCodeMapping(AddressMapping):
    """Deliberately bad: systematic 'code' = low bits + constant pad.

    Ordered (codewords cover each other), same ROM width as a reference
    q-out-of-r code.  Exists only for the X5 ablation.
    """

    def __init__(self, n_bits: int, width: int, used: int):
        self.n_bits = n_bits
        self.rom_width = width
        self.num_words_used = used
        self._bits = max(1, (used - 1)).bit_length()

    def index(self, address: int) -> int:
        self._check_address(address)
        return address % self.num_words_used

    def codeword(self, address: int) -> BitVector:
        value = self.index(address)
        bits = tuple(
            (value >> (self._bits - 1 - i)) & 1 for i in range(self._bits)
        )
        pad = (0,) * (self.rom_width - self._bits)
        return bits + pad


class _MembershipChecker(Checker):
    """Accepts exactly the words the ordered mapping can emit."""

    def __init__(self, mapping: AddressMapping):
        self.input_width = mapping.rom_width
        self._words = {
            mapping.codeword(a) for a in range(1 << mapping.n_bits)
        }

    def indication(self, word) -> Tuple[int, int]:
        return (1, 0) if tuple(word) in self._words else (1, 1)


@dataclass
class UnorderedAblation:
    n_bits: int
    unordered_is_and_closed: bool
    ordered_is_and_closed: bool
    coverage_unordered: float
    coverage_ordered: float
    silent_sa0_ordered: int
    #: faults simulated across both campaigns
    faults: int = 0


def run_unordered_ablation(
    n_bits: int = 5,
    cycles: int = 300,
    seed: int = 11,
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> UnorderedAblation:
    code = MOutOfNCode(3, 5)
    good_mapping = mapping_for_code(code, n_bits)
    bad_mapping = _OrderedCodeMapping(
        n_bits, width=code.n, used=good_mapping.a
    )
    driver = CampaignEngine(
        engine=engine, workers=workers, store=open_store(store), cache=cache
    )
    addresses = Workload.uniform(1 << n_bits, cycles, seed=seed)

    good = CheckedDecoder(good_mapping)
    good_result = driver.decoder(
        good,
        MOutOfNChecker(code.m, code.n, structural=False),
        decoder_fault_list(good),
        addresses,
        attach_analytic=False,
    )

    bad = CheckedDecoder(bad_mapping)
    bad_checker = _MembershipChecker(bad_mapping)
    bad_result = driver.decoder(
        bad,
        bad_checker,
        decoder_fault_list(bad),
        addresses,
        attach_analytic=False,
    )
    silent_sa0 = sum(
        1
        for r in bad_result.records
        if r.kind == "sa0" and r.first_error is not None and not r.detected
    )

    good_words = [good_mapping.codeword(a) for a in range(1 << n_bits)]
    bad_words = [bad_mapping.codeword(a) for a in range(1 << n_bits)]
    return UnorderedAblation(
        n_bits=n_bits,
        unordered_is_and_closed=and_of_distinct_words_is_noncode(good_words),
        ordered_is_and_closed=and_of_distinct_words_is_noncode(bad_words),
        coverage_unordered=good_result.coverage,
        coverage_ordered=bad_result.coverage,
        silent_sa0_ordered=silent_sa0,
        faults=good_result.total + bad_result.total,
    )


#: stats of the most recent main() run, surfaced by the CLI's --json
LAST_CAMPAIGN_STATS: dict = {}


def main(
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> None:
    store = open_store(store)
    start = time.perf_counter()
    odd = run_odd_a_ablation(
        engine=engine, workers=workers, store=store, cache=cache
    )
    print("X4 — odd modulus ablation (mod-a vs truncated-Berger ROM)")
    print(f"  coverage, final mod-a mapping      : {odd.coverage_mod_a:.3f}")
    print(
        f"  coverage, SIII.1 truncated Berger  : "
        f"{odd.coverage_truncated_berger:.3f}"
    )
    print(
        f"  analytically blind s-a-1 sites     : "
        f"{odd.blind_sites_mod_a} (mod-a) vs "
        f"{odd.blind_sites_berger} (Berger)"
    )
    uno = run_unordered_ablation(
        engine=engine, workers=workers, store=store, cache=cache
    )
    extra = {}
    if store is not None:
        extra["store"] = store.stats.to_dict()
    record_campaign_stats(
        LAST_CAMPAIGN_STATS, engine, odd.faults + uno.faults,
        time.perf_counter() - start, **extra,
    )
    print("X5 — unordered-code ablation (3-out-of-5 vs ordered systematic)")
    print(
        f"  AND of distinct words is non-code  : "
        f"{uno.unordered_is_and_closed} (unordered) vs "
        f"{uno.ordered_is_and_closed} (ordered)"
    )
    print(f"  coverage, unordered code           : {uno.coverage_unordered:.3f}")
    print(f"  coverage, ordered code             : {uno.coverage_ordered:.3f}")
    print(f"  silent excited s-a-0 faults (ordered): {uno.silent_sa0_ordered}")


if __name__ == "__main__":
    main()
