"""E2 — regenerate Table (2): hardware increase vs escape probability.

Fix ``c = 10`` cycles, sweep ``Pndc`` over {1e-2 .. 1e-30}, select the
code per §III.2 and report std-cell overheads for the three RAM sizes.
The paper sized this table with the ``1/a`` approximation, which the
APPROXIMATE policy reproduces on all six rows (the EXACT policy widens
the 1e-20 row to honour the ceil-bound — both are printed).

Run: ``python -m repro.experiments.table2``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.area.stdcell import StdCellAreaModel
from repro.core.selection import (
    SelectionPolicy,
    select_code,
)
from repro.experiments.common import (
    ORG_LABELS,
    TABLE2_PAPER,
    format_table,
    parse_code_name,
)
from repro.memory.organization import PAPER_ORGS

__all__ = ["Table2Row", "generate_table2", "render_table2", "main"]

C_FIXED = 10
PNDC_VALUES = (1e-2, 1e-5, 1e-9, 1e-15, 1e-20, 1e-30)


@dataclass
class Table2Row:
    pndc: float
    our_code: str
    our_a: int
    our_pndc: float
    our_meets_target: bool
    our_overheads: Tuple[float, ...]
    paper_code: str
    paper_overheads_model: Tuple[float, ...]
    paper_overheads_reported: Tuple[float, ...]

    @property
    def matches_paper(self) -> bool:
        return self.our_code == self.paper_code


def generate_table2(
    policy: SelectionPolicy = SelectionPolicy.APPROXIMATE,
    model: StdCellAreaModel = None,
) -> List[Table2Row]:
    model = model or StdCellAreaModel()
    rows: List[Table2Row] = []
    for pndc in PNDC_VALUES:
        selection = select_code(C_FIXED, pndc, policy=policy)
        ours = tuple(
            model.overhead_percent(org, r_row=selection.rom_width)
            for org in PAPER_ORGS
        )
        paper_name, paper_reported = TABLE2_PAPER[pndc]
        paper_code = parse_code_name(paper_name)
        paper_model = tuple(
            model.overhead_percent(org, r_row=paper_code.n)
            for org in PAPER_ORGS
        )
        rows.append(
            Table2Row(
                pndc=pndc,
                our_code=selection.code_name,
                our_a=selection.a_final,
                our_pndc=selection.achieved_pndc,
                our_meets_target=selection.meets_target,
                our_overheads=ours,
                paper_code=paper_name,
                paper_overheads_model=paper_model,
                paper_overheads_reported=paper_reported,
            )
        )
    return rows


def render_table2(rows: List[Table2Row] = None) -> str:
    rows = rows if rows is not None else generate_table2()
    headers = (
        ["Pndc", "code (ours)", "a"]
        + [f"{label} %" for label in ORG_LABELS]
        + ["code (paper)"]
        + [f"{label} % (paper)" for label in ORG_LABELS]
    )
    body = []
    for row in rows:
        body.append(
            [f"{row.pndc:g}", row.our_code, row.our_a]
            + [f"{v:.2f}" for v in row.our_overheads]
            + [row.paper_code]
            + [f"{v:g}" for v in row.paper_overheads_reported]
        )
    title = (
        f"Table 2 — c = {C_FIXED} cycles, Pndc swept "
        f"(std-cell model, approximate sizing as in the paper)\n"
    )
    return title + format_table(headers, body)


def main(out: Optional[str] = None) -> None:
    """Print the table; ``out`` additionally writes it to a file."""
    approx_rows = generate_table2()
    lines = [render_table2(approx_rows)]
    exact_rows = generate_table2(policy=SelectionPolicy.EXACT)
    diffs = [
        (approx, exact)
        for approx, exact in zip(approx_rows, exact_rows)
        if approx.our_code != exact.our_code
    ]
    if diffs:
        lines.append(
            "\nRows where the exact ceil-bound demands a wider code than "
            "the paper's 1/a approximation:"
        )
        for approx, exact in diffs:
            lines.append(
                f"  Pndc={approx.pndc:g}: paper/approx {approx.our_code} "
                f"(achieved Pndc={approx.our_pndc:.3g}) vs exact "
                f"{exact.our_code} (achieved Pndc={exact.our_pndc:.3g})"
            )
    text = "\n".join(lines)
    print(text)
    if out is not None:
        with open(out, "w") as handle:
            handle.write(text + "\n")


if __name__ == "__main__":
    import sys

    main(out=sys.argv[1] if len(sys.argv) > 1 else None)
