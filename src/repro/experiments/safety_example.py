"""E3 — regenerate the §II safety arithmetic.

The paper's motivating numbers: decoders are 10 % of the memory, MTBF
1e-5 faults/hour.  A scheme missing 1e-4 of real faults leaves a
1e-9/hour undetectable-fault rate; checking only the word array leaves
~1e-6/hour — three orders of magnitude worse.

Run: ``python -m repro.experiments.safety_example``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.safety import (
    SafetyModel,
    undetectable_rate_unchecked_decoders,
    undetectable_rate_with_coverage,
)

__all__ = ["SafetyExample", "generate_safety_example", "main"]

FAULT_RATE = 1e-5
DECODER_FRACTION = 0.1
SCHEME_ESCAPE = 1e-4


@dataclass
class SafetyExample:
    rate_full_coverage_scheme: float
    rate_array_only: float
    orders_of_magnitude_lost: float
    paper_rate_full_scheme: float = 1e-9
    paper_rate_array_only: float = 1e-6


def generate_safety_example() -> SafetyExample:
    full = undetectable_rate_with_coverage(FAULT_RATE, SCHEME_ESCAPE)
    array_only = undetectable_rate_unchecked_decoders(
        FAULT_RATE, DECODER_FRACTION, SCHEME_ESCAPE
    )
    import math

    return SafetyExample(
        rate_full_coverage_scheme=full,
        rate_array_only=array_only,
        orders_of_magnitude_lost=math.log10(array_only / full),
    )


def main() -> None:
    ex = generate_safety_example()
    print("Section II safety example (MTBF 1e-5/h, decoders 10% of area)")
    print(
        f"  scheme covering decoders (escape 1e-4): "
        f"{ex.rate_full_coverage_scheme:.3g} undetectable faults/hour "
        f"(paper: {ex.paper_rate_full_scheme:g})"
    )
    print(
        f"  word-array-only checking:               "
        f"{ex.rate_array_only:.3g} undetectable faults/hour "
        f"(paper: ~{ex.paper_rate_array_only:g})"
    )
    print(
        f"  safety lost by ignoring decoders: "
        f"{ex.orders_of_magnitude_lost:.1f} orders of magnitude"
    )
    model = SafetyModel(FAULT_RATE, DECODER_FRACTION, SCHEME_ESCAPE)
    for escape in (1e-2, 1e-4, 1e-6):
        print(
            f"  with the ROM scheme at decoder escape {escape:g}: "
            f"{model.rate_with_scheme(escape):.3g}/h "
            f"(improvement x{model.improvement_factor(escape):.3g})"
        )


if __name__ == "__main__":
    main()
