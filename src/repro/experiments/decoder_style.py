"""X10 — single-level vs multilevel decoders under the parity scheme.

§III's motivating observation for the whole paper: the cheap (even, odd)
parity ROM of [CHE 85]/[NIC 84b] works well for a *single-level* decoder
— every internal fault merges word lines whose addresses differ in one
bit, and odd-distance merges always flip the parity — but degrades badly
on a *multilevel* decoder, whose block faults merge lines differing in a
whole sub-field (detected only with probability 1/2 per cycle).  The
paper's mod-a construction exists to fix exactly this.

The experiment builds both decoder styles at the same width, programs the
same 1-out-of-2 parity ROM, runs the same exhaustive stuck-at campaign,
and reports first-error detection latencies.  It then shows the paper's
3-out-of-5 scheme restoring short latencies on the multilevel decoder.

Run: ``python -m repro.experiments.decoder_style``
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import ParityMapping, mapping_for_code
from repro.decoder.flat import FlatDecoder
from repro.experiments.common import open_store, record_campaign_stats
from repro.decoder.tree import DecoderTree
from repro.scenarios import CampaignEngine, Workload
from repro.rom.nor_matrix import CheckedDecoder

__all__ = ["StyleResult", "run_decoder_style_experiment", "main"]


@dataclass
class StyleResult:
    label: str
    faults: int
    coverage: float
    #: fraction of *excited* faults detected on their first erroneous cycle
    zero_latency_fraction: float
    worst_latency: Optional[int]
    mean_latency: float


def _campaign(
    checked, checker, cycles, seed, driver: CampaignEngine
) -> StyleResult:
    # Branch (pin) faults included: the single-level decoder's strength
    # is precisely that its AND-gate branch faults merge addresses one
    # bit apart.  ROM gates excluded (same checking logic both styles).
    from repro.circuits.faults import PinStuckAt, enumerate_stuck_at_faults

    rom_gate_indices = {
        checked.circuit.driver_of(net).index for net in checked.rom_nets
    }
    faults = [
        f
        for f in enumerate_stuck_at_faults(
            checked.tree.circuit, include_inputs=False, include_pins=True
        )
        if not (
            isinstance(f, PinStuckAt) and f.gate_index in rom_gate_indices
        )
        and not (
            not isinstance(f, PinStuckAt) and f.net in checked.rom_nets
        )
    ]
    addresses = Workload.uniform(1 << checked.n, cycles, seed=seed)
    result = driver.decoder(
        checked, checker, faults, addresses, attach_analytic=False
    )
    excited = [r for r in result.records if r.first_error is not None]
    zero = sum(
        1 for r in excited if r.detected and r.latency == 0
    )
    latencies = [r.latency for r in excited if r.latency is not None]
    return StyleResult(
        label=checked.tree.__class__.__name__,
        faults=len(faults),
        coverage=result.coverage,
        zero_latency_fraction=zero / len(excited) if excited else 1.0,
        worst_latency=max(latencies) if latencies else None,
        mean_latency=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
    )


def run_decoder_style_experiment(
    n_bits: int = 6,
    cycles: int = 400,
    seed: int = 23,
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> List[StyleResult]:
    """Three configurations: flat+parity, tree+parity, tree+3-out-of-5."""
    driver = CampaignEngine(
        engine=engine, workers=workers, store=open_store(store), cache=cache
    )
    parity_checker = MOutOfNChecker(1, 2, structural=False)
    results = []

    flat = CheckedDecoder(
        ParityMapping(n_bits), decoder=FlatDecoder(n_bits)
    )
    row = _campaign(flat, parity_checker, cycles, seed, driver)
    row.label = "single-level + 1-out-of-2 parity"
    results.append(row)

    tree_parity = CheckedDecoder(
        ParityMapping(n_bits), decoder=DecoderTree(n_bits)
    )
    row = _campaign(tree_parity, parity_checker, cycles, seed, driver)
    row.label = "multilevel + 1-out-of-2 parity"
    results.append(row)

    code = MOutOfNCode(3, 5)
    tree_mod = CheckedDecoder(mapping_for_code(code, n_bits))
    row = _campaign(
        tree_mod,
        MOutOfNChecker(code.m, code.n, structural=False),
        cycles,
        seed,
        driver,
    )
    row.label = "multilevel + 3-out-of-5 mod-a (this paper)"
    results.append(row)
    return results


#: stats of the most recent main() run, surfaced by the CLI's --json
LAST_CAMPAIGN_STATS: dict = {}


def main(
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> None:
    store = open_store(store)
    start = time.perf_counter()
    results = run_decoder_style_experiment(
        engine=engine, workers=workers, store=store, cache=cache
    )
    extra = {}
    if store is not None:
        extra["store"] = store.stats.to_dict()
    record_campaign_stats(
        LAST_CAMPAIGN_STATS, engine, sum(row.faults for row in results),
        time.perf_counter() - start, **extra,
    )
    print("X10 — decoder style vs checking scheme (first-error latency)")
    for row in results:
        worst = "-" if row.worst_latency is None else row.worst_latency
        print(
            f"  {row.label:42s}: coverage {row.coverage:.3f}, "
            f"zero-latency {row.zero_latency_fraction:.2f}, "
            f"worst latency {worst}, mean {row.mean_latency:.2f}"
        )
    print(
        "\nthe paper's point: parity checking is enough for single-level "
        "decoders but\ndegrades on multilevel ones; the mod-a unordered "
        "code restores short latency\nat tunable cost."
    )


if __name__ == "__main__":
    main()
