"""Regenerators for every table and figure of the paper (see DESIGN.md §5).

Each module is runnable (``python -m repro.experiments.<name>``) and
exposes a ``generate_*``/``run_*`` function returning structured rows so
benches and tests can assert on the numbers.
"""

from repro.experiments.ablations import (
    run_odd_a_ablation,
    run_unordered_ablation,
)
from repro.experiments.area_example import generate_area_example
from repro.experiments.decoder_style import run_decoder_style_experiment
from repro.experiments.ecc_baseline import (
    run_ecc_baseline,
    storage_overhead_rows,
)
from repro.experiments.latency_empirical import run_latency_experiment
from repro.experiments.safety_example import generate_safety_example
from repro.experiments.structure import (
    build_figure3_instance,
    verify_structure,
)
from repro.experiments.table1 import generate_table1, render_table1
from repro.experiments.table2 import generate_table2, render_table2

__all__ = [
    "generate_table1",
    "render_table1",
    "generate_table2",
    "render_table2",
    "generate_safety_example",
    "generate_area_example",
    "build_figure3_instance",
    "verify_structure",
    "run_latency_experiment",
    "run_odd_a_ablation",
    "run_unordered_ablation",
    "run_ecc_baseline",
    "storage_overhead_rows",
    "run_decoder_style_experiment",
]
