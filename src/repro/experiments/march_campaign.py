"""X7 — march-algorithm coverage matrix over the behavioural fault classes.

Every classical march test against every behavioural fault family of
:mod:`repro.memory.faults`, through the unified campaign engine: cell
and data-line stuck-ats (covered by all algorithms), mux-way stuck-ats,
and the idempotent coupling fault in both its read-state and
write-triggered (textbook CFid) models.  The matrix reproduces the
classical guarantees — March C- (10N) detects every class including
write-triggered coupling in both address orders, while MATS+ (5N)
provably misses the aggressor-above-victim CFid.

Campaigns run through :meth:`repro.scenarios.CampaignEngine.march`
(``engine="packed"`` compiles the march to read/write lane masks;
``engine="serial"`` replays per operation).

Run: ``python -m repro.experiments.march_campaign``
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    format_table,
    open_store,
    record_campaign_stats,
)
from repro.memory.faults import (
    CellStuckAt,
    CouplingFault,
    DataLineStuckAt,
    MemoryFault,
    MuxLineStuckAt,
)
from repro.memory.march import (
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS_PLUS,
    MarchTest,
)
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.scenarios import CampaignEngine, MemoryScenario

__all__ = [
    "MarchCoverageRow",
    "fault_classes",
    "run_march_experiment",
    "generate_march_rows",
    "main",
]

WORDS = 64
BITS = 8


@dataclass
class MarchCoverageRow:
    """One march algorithm's detection record over the fault classes."""

    test: str
    complexity: int
    faults: int
    detected: int
    coverage: float
    #: fault-class labels with at least one missed fault
    missed_classes: Tuple[str, ...]


def _ram() -> BehavioralRAM:
    return BehavioralRAM(
        MemoryOrganization(words=WORDS, bits=BITS, column_mux=4)
    )


def fault_classes() -> Dict[str, List[MemoryFault]]:
    """The behavioural fault population, labelled by class."""
    return {
        "cell stuck-at": [
            CellStuckAt(address, bit, value)
            for address in (0, 13, WORDS - 1)
            for bit in (0, BITS - 1)
            for value in (0, 1)
        ],
        "data line stuck-at": [
            DataLineStuckAt(bit, value)
            for bit in (1, 6)
            for value in (0, 1)
        ],
        "mux line stuck-at": [
            MuxLineStuckAt(column, bit, value)
            for column in (0, 3)
            for bit in (2,)
            for value in (0, 1)
        ],
        "coupling (read state)": [
            CouplingFault(3, 0, 9, 0),
            CouplingFault(40, 2, 11, 2),
        ],
        "coupling (write CFid)": [
            # both address orders, both transition directions
            CouplingFault(3, 0, 9, 0, write_triggered=True),
            CouplingFault(40, 2, 11, 2, write_triggered=True),
            CouplingFault(
                40, 1, 11, 1, trigger=0, forced=0, write_triggered=True
            ),
        ],
    }


MARCH_SUITE: Tuple[MarchTest, ...] = (
    MATS_PLUS,
    MARCH_X,
    MARCH_Y,
    MARCH_C_MINUS,
)


def run_march_experiment(
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> List[MarchCoverageRow]:
    driver = CampaignEngine(
        engine=engine, workers=workers, store=open_store(store), cache=cache
    )
    classes = fault_classes()
    scenarios: List[MemoryScenario] = []
    labels: List[str] = []
    for label, faults in classes.items():
        for fault in faults:
            scenarios.append(MemoryScenario(faults=(fault,)))
            labels.append(label)
    rows: List[MarchCoverageRow] = []
    for test in MARCH_SUITE:
        result = driver.march(_ram(), scenarios, test)
        missed = sorted(
            {
                label
                for label, record in zip(labels, result.records)
                if not record.detected
            }
        )
        rows.append(
            MarchCoverageRow(
                test=test.name,
                complexity=test.complexity,
                faults=result.total,
                detected=result.detected,
                coverage=result.coverage,
                missed_classes=tuple(missed),
            )
        )
    return rows


#: stats of the most recent main() run, surfaced by the CLI's --json
LAST_CAMPAIGN_STATS: Dict[str, object] = {}


def generate_march_rows(
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> List[MarchCoverageRow]:
    """Structured rows for the CLI's ``--json`` (same engine selection
    as the printed run)."""
    return run_march_experiment(
        engine=engine, workers=workers, store=store, cache=cache
    )


def main(
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> None:
    store = open_store(store)
    start = time.perf_counter()
    rows = run_march_experiment(
        engine=engine, workers=workers, store=store, cache=cache
    )
    extra = {}
    if store is not None:
        extra["store"] = store.stats.to_dict()
    record_campaign_stats(
        LAST_CAMPAIGN_STATS,
        engine,
        sum(row.faults for row in rows),
        time.perf_counter() - start,
        **extra,
    )
    print(
        f"X7 — march coverage matrix ({WORDS}x{BITS} RAM, "
        f"{engine} engine)"
    )
    table_rows = [
        [
            row.test,
            f"{row.complexity}N",
            row.faults,
            row.detected,
            f"{row.coverage:.3f}",
            ", ".join(row.missed_classes) or "-",
        ]
        for row in rows
    ]
    print(
        format_table(
            ["algorithm", "ops", "faults", "detected", "coverage",
             "classes with misses"],
            table_rows,
        )
    )
    print(
        "\nthe textbook picture: every algorithm covers stuck-ats; only "
        "March C-'s paired\nascending/descending read-write elements "
        "catch the write-triggered coupling\nfault in both address "
        "orders."
    )


if __name__ == "__main__":
    main()
