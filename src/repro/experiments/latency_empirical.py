"""X1/X2 — empirical detection-latency distribution vs the analytic model.

The paper reports only the closed-form ``Pndc = (⌈2^i/a⌉/2^i)^c``; this
experiment validates it by brute force: build a checked decoder, inject
*every* stuck-at fault in the tree, drive random addresses, and compare
the measured survival function (fraction of faults still undetected after
``c`` cycles) against the analytic per-site predictions.

The campaign runs on the packed engine by default (``engine="serial"``
selects the reference oracle, ``workers=N`` shards the fault list);
wall time and faults/sec are recorded on the result and surfaced by the
CLI's ``--json``.

Run: ``python -m repro.experiments.latency_empirical``
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.decoder.analysis import analyze_decoder
from repro.experiments.common import (
    format_table,
    open_store,
    record_campaign_stats,
)
from repro.faultsim.injector import decoder_fault_list
from repro.scenarios import CampaignEngine, Workload
from repro.rom.nor_matrix import CheckedDecoder

__all__ = [
    "LatencyExperiment",
    "run_latency_experiment",
    "survival_curve",
    "main",
]


@dataclass
class LatencyExperiment:
    n_bits: int
    code: MOutOfNCode
    cycles: int
    #: survival curve: c -> (measured escape fraction, analytic mean)
    curve: Dict[int, Tuple[float, float]]
    measured_worst_latency: Optional[int]
    analytic_worst_escape: float
    coverage: float
    zero_latency_sa0: bool
    #: campaign engine ('packed' | 'serial') and its throughput
    engine: str = "packed"
    faults: int = 0
    wall_time_s: float = 0.0
    faults_per_sec: float = 0.0


def survival_curve(
    result, analysis, checkpoints: List[int]
) -> Dict[int, Tuple[float, float]]:
    """(measured, analytic-mean) escape fraction after c cycles.

    The analytic curve averages each stuck-at-1 site's ``escape^c`` and
    each stuck-at-0 site's non-excitation probability, i.e. the expected
    fraction of the fault list still silent — directly comparable to the
    measured fraction.
    """
    sites = [
        s
        for s in analysis.sites
        if s.kind in ("sa0", "sa1") and s.escape_per_cycle is not None
    ]
    curve: Dict[int, Tuple[float, float]] = {}
    for c in checkpoints:
        measured = result.escape_fraction_at(c)
        analytic = sum(float(s.escape_per_cycle) ** c for s in sites) / len(
            sites
        )
        curve[c] = (measured, analytic)
    return curve


def run_latency_experiment(
    n_bits: int = 6,
    code: MOutOfNCode = None,
    cycles: int = 400,
    seed: int = 7,
    checkpoints: List[int] = None,
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> LatencyExperiment:
    code = code or MOutOfNCode(3, 5)
    checkpoints = checkpoints or [1, 2, 5, 10, 20, 50, 100, 200]
    mapping = mapping_for_code(code, n_bits)
    checked = CheckedDecoder(mapping)
    checker = MOutOfNChecker(code.m, code.n, structural=False)
    faults = decoder_fault_list(checked)
    addresses = Workload.uniform(1 << n_bits, cycles, seed=seed)
    driver = CampaignEngine(
        engine=engine, workers=workers, store=open_store(store), cache=cache
    )
    start = time.perf_counter()
    result = driver.decoder(checked, checker, faults, addresses)
    wall = time.perf_counter() - start
    analysis = analyze_decoder(checked.tree, mapping)

    # zero-latency check for s-a-0: latency (detection - first error) == 0
    sa0_records = [r for r in result.records if r.kind == "sa0" and r.detected]
    zero_latency = all(r.latency == 0 for r in sa0_records)

    detected_cycles = result.detection_cycles()
    return LatencyExperiment(
        n_bits=n_bits,
        code=code,
        cycles=cycles,
        curve=survival_curve(result, analysis, checkpoints),
        measured_worst_latency=max(detected_cycles) if detected_cycles else None,
        analytic_worst_escape=float(analysis.worst_escape()),
        coverage=result.coverage,
        zero_latency_sa0=zero_latency,
        engine=engine,
        faults=len(faults),
        wall_time_s=wall,
        faults_per_sec=len(faults) / wall if wall > 0 else 0.0,
    )


#: stats of the most recent main() run, surfaced by the CLI's --json
LAST_CAMPAIGN_STATS: Dict[str, object] = {}


def main(
    engine: str = "packed",
    workers: Optional[int] = None,
    store=None,
    cache: bool = True,
) -> None:
    store = open_store(store)
    exp = run_latency_experiment(
        engine=engine, workers=workers, store=store, cache=cache
    )
    extra = {"cycles": exp.cycles}
    if store is not None:
        extra["store"] = store.stats.to_dict()
    record_campaign_stats(
        LAST_CAMPAIGN_STATS, exp.engine, exp.faults, exp.wall_time_s,
        **extra,
    )
    print(
        f"Empirical latency validation: n={exp.n_bits} decoder, "
        f"{exp.code.name} code, {exp.cycles} random cycles"
    )
    rows = [
        [c, f"{measured:.4f}", f"{analytic:.4f}"]
        for c, (measured, analytic) in sorted(exp.curve.items())
    ]
    print(
        format_table(
            ["c (cycles)", "measured escape", "analytic escape"], rows
        )
    )
    print(f"fault coverage within horizon: {exp.coverage:.3f}")
    print(f"worst analytic per-cycle escape: {exp.analytic_worst_escape:.4f}")
    print(
        "stuck-at-0 zero-latency claim: "
        + ("holds" if exp.zero_latency_sa0 else "VIOLATED")
    )
    print(
        f"campaign engine: {exp.engine}, {exp.faults} faults in "
        f"{exp.wall_time_s * 1e3:.1f} ms "
        f"({exp.faults_per_sec:.0f} faults/s)"
    )


if __name__ == "__main__":
    main()
