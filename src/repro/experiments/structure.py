"""F1–F3 — structural reproduction of the paper's figures.

The paper's three figures are block diagrams, not data plots; the honest
reproduction is to *instantiate* each structure and verify its defining
connectivity properties programmatically:

* Figure 1 (general self-checking circuit): functional block + encoded
  outputs + checker — verified as: the scheme's read path emits encoded
  words and the checkers are code-disjoint observers.
* Figure 2 (memory block diagram): cell array / row decoder / column
  decoder / MUX / data register — verified on
  :class:`~repro.memory.organization.MemoryOrganization` geometry and the
  RAM read path.
* Figure 3 (the self-checking memory): two decoder-check ROMs with their
  q-out-of-r checkers plus the parity-protected data path — instantiated
  as :class:`~repro.core.scheme.SelfCheckingMemory` and smoke-tested with
  a fault of each class.

Run: ``python -m repro.experiments.structure``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.circuits.faults import NetStuckAt
from repro.core.scheme import SelfCheckingMemory
from repro.design.engine import DesignEngine
from repro.design.spec import DesignSpec
from repro.memory.faults import CellStuckAt

__all__ = ["StructureReport", "build_figure3_instance", "verify_structure", "main"]


@dataclass
class StructureReport:
    """Checklist outcome for the three figures."""

    checks: Dict[str, bool] = field(default_factory=dict)
    details: List[str] = field(default_factory=list)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks[name] = ok
        if detail:
            self.details.append(f"{name}: {detail}")

    @property
    def all_ok(self) -> bool:
        return all(self.checks.values())


def build_figure3_instance(
    words: int = 256, bits: int = 8, column_mux: int = 4,
    c: int = 10, pndc: float = 1e-9,
) -> SelfCheckingMemory:
    """A small but complete figure-3 memory (sized for simulation)."""
    spec = DesignSpec(
        words=words,
        bits=bits,
        column_mux=column_mux,
        c=c,
        pndc=pndc,
        column_zero_latency=False,  # one code on both decoders (tables)
    )
    return DesignEngine().build(spec)


def verify_structure(memory: SelfCheckingMemory = None) -> StructureReport:
    memory = memory or build_figure3_instance()
    report = StructureReport()
    org = memory.organization

    # Figure 2: geometry and exclusive cell-to-output wiring.
    report.record(
        "fig2.address_split",
        org.p + org.s == org.n,
        f"p={org.p}, s={org.s}, n={org.n}",
    )
    report.record(
        "fig2.array_geometry",
        org.rows * org.array_columns == org.capacity_bits * 1
        and org.array_columns == org.bits * org.column_mux,
        f"{org.rows} rows x {org.array_columns} columns",
    )
    memory.write(3, (1, 0) * (org.bits // 2))
    readback = memory.read(3)
    report.record(
        "fig2.read_path",
        readback.data == (1, 0) * (org.bits // 2),
        "write/read round trip through decoders and MUX",
    )

    # Figure 1/3: encoded outputs + checkers.
    row_word = memory.row.rom_word(0)
    report.record(
        "fig3.rom_emits_codeword",
        memory.row_checker.accepts(row_word),
        f"row ROM word {row_word}",
    )
    report.record(
        "fig3.fault_free_clean",
        not memory.read(5).error_detected,
        "no false alarms on a healthy memory",
    )

    # One fault of each class must be detectable.
    # (a) decoder stuck-at-0 -> all-1s at the ROM -> detected immediately.
    # (The tree's circuit also holds the appended ROM gates, so pick the
    # victim from the root decoding block's own outputs.)
    victim_net = memory.row.tree.root.output_nets[-1]
    memory.inject_row_fault(NetStuckAt(victim_net, 0))
    row_value, _ = org.split_address(3)
    block, sub_value = memory.row.tree.site_of_net(victim_net)
    # Address that excites the fault: set the block's bits to sub_value.
    excite_row = (row_value & ~(((1 << block.width) - 1) << block.lo)) | (
        sub_value << block.lo
    )
    excite_address = org.join_address(excite_row, 0)
    detected = memory.read(excite_address).error_detected
    memory.clear_faults()
    report.record("fig3.sa0_detected", detected, "decoder s-a-0 flagged")

    # (b) cell fault -> parity indication.
    memory.write(7, (0,) * org.bits)
    memory.inject_memory_fault(CellStuckAt(7, 0, 1))
    detected = not memory.read(7).parity_ok
    memory.clear_faults()
    report.record("fig3.cell_fault_parity", detected, "cell s-a-1 flagged")

    # (c) ROM output fault -> q-out-of-r checker.
    rom_net = memory.row.rom_nets[0]
    expected_bit = memory.row.expected_word(0)[0]
    memory.inject_row_fault(NetStuckAt(rom_net, expected_bit ^ 1))
    detected = not memory.read(0).row_ok
    memory.clear_faults()
    report.record("fig3.rom_fault_checked", detected, "ROM bit flip flagged")

    return report


def main() -> None:
    memory = build_figure3_instance()
    print(f"Figure-3 instance: {memory!r}")
    print(
        f"  row decoder tree: {memory.row.tree.circuit.num_gates} gates, "
        f"ROM width {memory.row.matrix.width}"
    )
    print(
        f"  column decoder tree: {memory.column.tree.circuit.num_gates} "
        f"gates, ROM width {memory.column.matrix.width}"
    )
    report = verify_structure(memory)
    for name, ok in report.checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    print("all structural checks passed" if report.all_ok else "FAILURES")


if __name__ == "__main__":
    main()
