"""In-process service doubles — handler tests without sockets.

:class:`InProcessClient` is the real :class:`~repro.service.client.
ServiceAPI` running against the real :class:`~repro.service.handlers.
Router`: every call goes through the same dispatch, JSON encoding and
error mapping as an HTTP request, minus the socket.  Anything proven
against it holds over the wire by construction, and the suite runs in
milliseconds because nothing binds a port.

::

    with CampaignService(store=tmp) as service:
        client = InProcessClient(service)
        job = client.submit("smoke")
        job = client.wait(job["job_id"])
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

from repro.service.client import ServiceAPI
from repro.service.handlers import Router
from repro.service.service import CampaignService

__all__ = ["InProcessClient"]


class InProcessClient(ServiceAPI):
    """The client API routed straight through :class:`Router` — same
    status codes, same payloads, no network."""

    def __init__(self, service: CampaignService):
        self.service = service
        self._router = Router(service)

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> Tuple[int, str, bytes]:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        return self._router.route(method, path, body)
