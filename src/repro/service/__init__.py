"""`repro.service` — the campaign service layer (1.6).

The traffic-shaped front over the batch stack: a long-running HTTP/JSON
job service through which many concurrent clients submit
:class:`~repro.suite.spec.SuiteSpec` campaigns against one shared
:class:`~repro.results.store.ResultStore`.  Zero dependencies beyond
the standard library.

* :class:`CampaignService` — the injectable core: a persistent
  :class:`JobQueue` (``queued -> running -> done|error|cancelled``,
  records survive server restarts), a bounded job worker pool decoupled
  from request lifetime, live per-job ``[i/N]`` progress snapshots fed
  by the runner's per-cell callbacks, cooperative cancellation, and
  hash-verified artifact reads;
* :mod:`~repro.service.handlers` — a socket-free :class:`Router`
  (``POST /suites``, ``GET /jobs[/{id}]``, ``POST /jobs/{id}/cancel``,
  ``GET /results/{key}[/records]``, ``GET /healthz``) plus the
  :func:`make_server`/:func:`serving` stdlib HTTP bindings;
* :class:`ServiceClient` — the ``urllib`` client
  (submit/poll/wait/fetch), with :class:`~repro.service.fakes.
  InProcessClient` as the exact socket-free double for tests.

Because jobs execute through :class:`~repro.suite.runner.SuiteRunner`
over the shared store, the batch layer's resume property carries over
the wire: re-submitting an identical suite completes as verified store
hits without invoking the simulator.

Quick path::

    from repro.service import CampaignService, ServiceClient, serving

    with CampaignService(store=".repro-store", workers=2) as service:
        with serving(service) as url:           # or: repro serve
            client = ServiceClient(url)
            job = client.submit("paper_grid")
            job = client.wait(job["job_id"])
            print(job["report"]["totals"])

CLI: ``repro serve`` / ``repro submit`` / ``repro jobs`` /
``repro fetch``.
"""

from repro.service.client import ServiceAPI, ServiceClient, ServiceError
from repro.service.fakes import InProcessClient
from repro.service.handlers import Router, make_server, serving
from repro.service.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    JobError,
    JobQueue,
    JobRecord,
    JobStateError,
)
from repro.service.service import JOB_OPTIONS, CampaignService

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JOB_OPTIONS",
    "JobError",
    "JobStateError",
    "JobRecord",
    "JobQueue",
    "CampaignService",
    "Router",
    "make_server",
    "serving",
    "ServiceAPI",
    "ServiceClient",
    "ServiceError",
    "InProcessClient",
]
