""":class:`CampaignService` — async suite execution over one shared
store.

The service owns three things:

* a :class:`~repro.service.jobs.JobQueue` persisted under the store
  root (the job table survives restarts);
* a bounded :class:`~concurrent.futures.ThreadPoolExecutor` of job
  workers, decoupled from request lifetime — ``submit`` returns
  immediately with a ``queued`` record and the pool drains jobs in
  submission order;
* read access to the :class:`~repro.results.store.ResultStore` the
  suites write into (every read request opens a fresh store handle, so
  request threads never share mutable counter state).

Execution reuses the whole batch stack: each job runs a
:class:`~repro.suite.runner.SuiteRunner` against the shared store, so
per-cell store lookups make a re-submitted identical suite complete as
verified hits without invoking the simulator, and the runner's
per-cell progress callbacks maintain the live ``[i/N]`` snapshot that
``GET /jobs/{id}`` serves.  Cancellation is cooperative: the runner
polls the job's cancel flag between cells.
"""

from __future__ import annotations

import threading
from concurrent import futures
from typing import Dict, List, Optional, Union

from repro.faultsim.vectorsim import CAMPAIGN_ENGINES
from repro.results import ResultStore
from repro.service.jobs import JobQueue, JobRecord, JobStateError
from repro.suite.runner import SuiteRunner
from repro.suite.spec import FAMILIES, SuiteSpec

__all__ = ["JOB_OPTIONS", "CampaignService"]

#: execution options a submission may carry (anything else is a 400)
JOB_OPTIONS = ("workers", "only", "engine", "cache")


def _validate_options(options: dict) -> dict:
    unknown = set(options) - set(JOB_OPTIONS)
    if unknown:
        raise ValueError(
            f"unknown job options {sorted(unknown)}; known: {JOB_OPTIONS}"
        )
    workers = options.get("workers")
    if workers is not None and (
        not isinstance(workers, int) or workers < 1
    ):
        raise ValueError(f"workers must be an int >= 1, got {workers!r}")
    engine = options.get("engine")
    if engine is not None and engine not in CAMPAIGN_ENGINES:
        raise ValueError(
            f"engine must be one of {CAMPAIGN_ENGINES}, got {engine!r}"
        )
    only = options.get("only")
    if only is not None and only not in FAMILIES:
        raise ValueError(
            f"only must be one of {FAMILIES}, got {only!r}"
        )
    cache = options.get("cache")
    if cache is not None and not isinstance(cache, bool):
        raise ValueError(f"cache must be a bool, got {cache!r}")
    return dict(options)


class CampaignService:
    """Suite submissions as async jobs over one shared result store.

    ``workers`` bounds the job pool (jobs beyond it queue).  With
    ``resume=True`` (the server's mode) jobs found ``queued`` in the
    recovered table — including ``running`` jobs re-queued by
    :meth:`JobQueue.recover` — are re-scheduled on startup; the default
    leaves them queued for inspection.
    """

    def __init__(
        self,
        store: Union[ResultStore, str],
        workers: int = 2,
        cache: bool = True,
        resume: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        store = ResultStore.coerce(store)
        if store is None:
            raise ValueError(
                "the service needs a result store — its job table and "
                "every artifact live there"
            )
        self.store_root = store.root
        self.cache = cache
        self.workers = workers
        self.jobs = JobQueue(self.store_root)
        self.recovered = self.jobs.recover()
        self._flags: Dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        self._pool = futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )
        self._closed = False
        if resume:
            for record in self.jobs.list(state="queued"):
                self._schedule(record.job_id)

    # -- lifecycle -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Drain (or abandon) the worker pool; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    @staticmethod
    def _resolve_suite(suite: Union[str, dict, SuiteSpec]) -> SuiteSpec:
        from repro.suite.builtin import builtin_suite

        if isinstance(suite, SuiteSpec):
            return suite
        if isinstance(suite, str):
            return builtin_suite(suite)
        if isinstance(suite, dict):
            return SuiteSpec.from_dict(suite)
        raise ValueError(
            f"suite must be a built-in name, a SuiteSpec or its dict, "
            f"got {type(suite).__name__}"
        )

    def submit(
        self,
        suite: Union[str, dict, SuiteSpec],
        options: Optional[dict] = None,
    ) -> JobRecord:
        """Queue a suite for execution; returns the ``queued`` record
        immediately (poll :meth:`job` or ``ServiceClient.wait``)."""
        if self._closed:
            raise RuntimeError("the service is shut down")
        spec = self._resolve_suite(suite)
        options = _validate_options(options or {})
        record = self.jobs.create(
            suite=spec.name, spec=spec.to_dict(), options=options
        )
        self._schedule(record.job_id)
        return record

    def _schedule(self, job_id: str) -> None:
        with self._lock:
            self._flags.setdefault(job_id, threading.Event())
        self._pool.submit(self._execute, job_id)

    # -- execution (job worker threads) --------------------------------------

    def _execute(self, job_id: str) -> None:
        flag = self._flags[job_id]
        try:
            record = self.jobs.transition(job_id, "running")
        except JobStateError:
            return  # cancelled while still queued
        spec = SuiteSpec.from_dict(record.spec)
        options = record.options

        def progress(event: dict) -> None:
            if event.get("event") != "done":
                return
            try:
                self.jobs.update(
                    job_id,
                    progress={
                        "completed": event["index"] + 1,
                        "total": event["total"],
                        "cell": event["cell"],
                        "status": event.get("status"),
                    },
                )
            except JobStateError:
                pass  # terminal already (late pooled event)

        runner = SuiteRunner(
            store=self.store_root,
            cache=options.get("cache", self.cache),
            workers=options.get("workers"),
            progress=progress,
            should_stop=flag.is_set,
        )
        try:
            report = runner.run(
                spec,
                only=options.get("only"),
                engine=options.get("engine"),
            )
        except Exception as exc:
            message = " ".join(str(exc).split()) or type(exc).__name__
            self._finish(
                job_id, "error", error=f"{type(exc).__name__}: {message}"
            )
            return
        state = "cancelled" if flag.is_set() else "done"
        self._finish(
            job_id,
            state,
            report=report.to_dict(),
            result_keys=[
                cell.store_key for cell in report.cells if cell.store_key
            ],
        )

    def _finish(self, job_id: str, state: str, **fields) -> None:
        try:
            self.jobs.transition(job_id, state, **fields)
        except JobStateError:
            pass  # lost a race against an external transition

    # -- job API -------------------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        return self.jobs.get(job_id)

    def list_jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        return self.jobs.list(state=state)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job immediately; request cooperative
        cancellation of a running one (the runner stops at the next
        cell boundary).  Terminal jobs raise :class:`JobStateError`."""
        record = self.jobs.get(job_id)
        if record.finished:
            raise JobStateError(
                f"job {job_id} is already {record.state}"
            )
        with self._lock:
            flag = self._flags.setdefault(job_id, threading.Event())
        flag.set()
        if record.state == "queued":
            try:
                return self.jobs.transition(
                    job_id, "cancelled", error="cancelled before start"
                )
            except JobStateError:
                pass  # the pool started it in the meantime
        return self.jobs.update(
            job_id,
            progress=dict(
                self.jobs.get(job_id).progress, cancel_requested=True
            ),
        )

    # -- result access (request threads) -------------------------------------

    def _store(self) -> ResultStore:
        # a fresh handle per read: request threads never share the
        # mutable stats counters
        return ResultStore(self.store_root)

    @staticmethod
    def _resolve_any(store: ResultStore, key: str):
        """(full key, kind): campaign payload keys first, then the
        design-report side table — a job's ``result_keys`` mixes both."""
        try:
            return store.resolve(key), "campaign"
        except LookupError:
            matches = [
                full
                for full in store.report_keys()
                if full.startswith(key)
            ]
            if len(matches) == 1:
                return matches[0], "report"
            if len(matches) > 1:
                raise LookupError(
                    f"{key!r} is ambiguous among report entries"
                ) from None
            raise

    def result(self, key: str) -> dict:
        """Metadata + summary of one stored artifact — a campaign
        result set or a design report (prefix accepted;
        ``LookupError`` -> 404)."""
        store = self._store()
        full, kind = self._resolve_any(store, key)
        if kind == "report":
            return {
                "key": full,
                "kind": kind,
                "report": store.get_report(full),  # hash-verified
            }
        meta = store.meta(full) or {}
        return {
            "key": full,
            "kind": kind,
            "campaign": meta.get("campaign"),
            "summary": meta.get("summary"),
            "sha256": meta.get("sha256"),
            "created_at": meta.get("created_at"),
            "repro_version": meta.get("repro_version"),
        }

    def records(self, key: str) -> str:
        """The raw, hash-verified JSONL payload of one campaign
        artifact."""
        store = self._store()
        full, kind = self._resolve_any(store, key)
        if kind == "report":
            raise ValueError(
                f"{full[:12]}… is a design-report entry with no JSONL "
                f"records; GET /results/{full[:12]} instead"
            )
        payload = store.payload(full)
        if payload is None:
            raise LookupError(
                f"store entry {key!r} vanished between resolve and read"
            )
        return payload

    # -- health --------------------------------------------------------------

    def health(self) -> dict:
        from repro import __version__

        return {
            "status": "ok",
            "version": __version__,
            "store": self.store_root,
            "workers": self.workers,
            "jobs": self.jobs.counts(),
        }
