"""`ServiceClient` — the stdlib client for ``repro serve``.

All endpoint methods live on :class:`ServiceAPI` in terms of one
abstract ``_request``; :class:`ServiceClient` implements it with
``urllib`` over a real socket, and the in-process double in
:mod:`repro.service.fakes` implements it by calling the router
directly — the same API object either way, so tests written against
the fake hold against the wire.

Quick path::

    client = ServiceClient("http://127.0.0.1:8032")
    job = client.submit("paper_grid", workers=2)
    job = client.wait(job["job_id"], progress=print)
    records = client.records(job["result_keys"][0])   # JSONL
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, List, Optional, Tuple, Union

from repro.service.jobs import TERMINAL_STATES

__all__ = ["ServiceError", "ServiceAPI", "ServiceClient"]


class ServiceError(RuntimeError):
    """An error response (or an unreachable server: ``status == 0``)."""

    def __init__(self, status: int, message: str):
        super().__init__(
            f"{message} (HTTP {status})" if status else message
        )
        self.status = status
        self.message = message


class ServiceAPI:
    """Endpoint methods shared by the real client and the fake."""

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> Tuple[int, str, bytes]:
        raise NotImplementedError

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ):
        status, _content_type, body = self._request(method, path, payload)
        data = json.loads(body) if body else None
        if status >= 400:
            message = f"HTTP {status}"
            if isinstance(data, dict) and data.get("error"):
                message = str(data["error"])
            raise ServiceError(status, message)
        return data

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def submit(self, suite: Union[str, dict], **options) -> dict:
        """Submit a suite (built-in name or SuiteSpec dict/value);
        returns the queued job record.  Options: ``workers``, ``only``,
        ``engine``, ``cache`` (``None`` values are dropped)."""
        to_dict = getattr(suite, "to_dict", None)
        if callable(to_dict):
            suite = to_dict()
        payload: dict = {"suite": suite}
        options = {
            name: value
            for name, value in options.items()
            if value is not None
        }
        if options:
            payload["options"] = options
        return self._json("POST", "/suites", payload)

    def jobs(self) -> List[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def result(self, key: str) -> dict:
        return self._json("GET", f"/results/{key}")

    def records(self, key: str) -> str:
        """The artifact's raw JSONL records (hash-verified server-side)."""
        status, _content_type, body = self._request(
            "GET", f"/results/{key}/records"
        )
        if status >= 400:
            message = f"HTTP {status}"
            try:
                data = json.loads(body)
                if isinstance(data, dict) and data.get("error"):
                    message = str(data["error"])
            except (json.JSONDecodeError, ValueError):
                pass
            raise ServiceError(status, message)
        return body.decode("utf-8")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll: float = 0.05,
        progress: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Poll until the job reaches a terminal state.

        ``progress`` is called with the job dict whenever the progress
        snapshot changes; :class:`TimeoutError` after ``timeout``
        seconds."""
        deadline = time.monotonic() + timeout
        last_snapshot: Optional[dict] = None
        while True:
            job = self.job(job_id)
            snapshot = job.get("progress") or {}
            if progress is not None and snapshot != last_snapshot:
                progress(job)
                last_snapshot = dict(snapshot)
            if job.get("state") in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job.get('state')!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll)


class ServiceClient(ServiceAPI):
    """The over-the-wire client (stdlib ``urllib``, JSON in/out)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> Tuple[int, str, bytes]:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return (
                    response.status,
                    response.headers.get("Content-Type", ""),
                    response.read(),
                )
        except urllib.error.HTTPError as exc:
            return exc.code, exc.headers.get("Content-Type", ""), exc.read()
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}"
            ) from None
