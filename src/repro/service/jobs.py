"""Job records and the persistent :class:`JobQueue` behind ``repro
serve``.

A **job** is one submitted suite run: the full :class:`~repro.suite.
spec.SuiteSpec` dict, the execution options, and everything the run
produced.  Records are plain JSON — they round-trip losslessly through
``to_dict``/``from_dict`` — and every mutation is persisted atomically
under ``<store>/jobs/<job_id>.json``, so a restarted server recovers
its whole job table from the store directory it serves.

State machine (enforced — an illegal transition raises
:class:`JobStateError`, which the HTTP layer maps to 409)::

    queued ──> running ──> done
       │          ├──────> error
       └──────────┴──────> cancelled

Terminal states are immutable.  :meth:`JobQueue.recover` re-queues
jobs that were ``running`` when the previous server died — the store-
backed resume property makes re-executing them idempotent (completed
cells are served as verified hits).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobError",
    "JobStateError",
    "JobRecord",
    "JobQueue",
]

#: every state a job can be in, in lifecycle order
JOB_STATES = ("queued", "running", "done", "error", "cancelled")

#: states a job never leaves
TERMINAL_STATES = ("done", "error", "cancelled")

_TRANSITIONS = {
    "queued": ("running", "cancelled"),
    "running": ("done", "error", "cancelled"),
    "done": (),
    "error": (),
    "cancelled": (),
}


class JobError(RuntimeError):
    """Unknown job id (the HTTP layer maps this to 404)."""


class JobStateError(JobError):
    """Illegal state transition (the HTTP layer maps this to 409)."""


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass
class JobRecord:
    """One submitted suite run, JSON-round-trippable.

    ``progress`` is the live ``[completed/total]`` snapshot the runner's
    per-cell callbacks maintain; ``report`` is the full
    ``SuiteReport.to_dict()`` once the job reaches a terminal state;
    ``result_keys`` are the store keys of every cell artifact, in cell
    order, for ``GET /results/{key}`` fetches.
    """

    job_id: str
    suite: str
    #: the full SuiteSpec dict — a recovered server can re-run the job
    spec: dict
    #: execution options: workers / only / engine / cache
    options: dict = field(default_factory=dict)
    state: str = "queued"
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: live snapshot: {"completed": i, "total": N, "cell": ..., ...}
    progress: dict = field(default_factory=dict)
    report: Optional[dict] = None
    result_keys: List[str] = field(default_factory=list)
    error: Optional[str] = None
    #: set when recover() re-queued this job after a server restart
    recovered: bool = False

    def __post_init__(self):
        if self.state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {self.state!r}; known: {JOB_STATES}"
            )
        if not self.created_at:
            self.created_at = time.time()

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "suite": self.suite,
            "spec": self.spec,
            "options": dict(self.options),
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": dict(self.progress),
            "report": self.report,
            "result_keys": list(self.result_keys),
            "error": self.error,
            "recovered": self.recovered,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        return cls(
            job_id=data["job_id"],
            suite=data.get("suite", ""),
            spec=dict(data.get("spec") or {}),
            options=dict(data.get("options") or {}),
            state=data.get("state", "queued"),
            created_at=float(data.get("created_at") or 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            progress=dict(data.get("progress") or {}),
            report=data.get("report"),
            result_keys=list(data.get("result_keys") or ()),
            error=data.get("error"),
            recovered=bool(data.get("recovered", False)),
        )


class JobQueue:
    """The persistent, thread-safe job table under ``<root>/jobs/``.

    Every mutation goes through one lock and is written atomically
    (pid-unique temp file + ``os.replace``), so request threads, job
    worker threads and a concurrent reader of the directory always see
    complete records.  A half-written or unparsable record file is
    skipped on load — it can never poison the table.
    """

    def __init__(self, root: str):
        self.root = os.path.join(os.fspath(root), "jobs")
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.RLock()
        self._jobs: Dict[str, JobRecord] = {}
        self._load()

    # -- persistence ---------------------------------------------------------

    def _path(self, job_id: str) -> str:
        return os.path.join(self.root, f"{job_id}.json")

    def _load(self) -> None:
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.root, name)) as handle:
                    record = JobRecord.from_dict(json.load(handle))
            except (OSError, json.JSONDecodeError, KeyError, ValueError):
                continue
            self._jobs[record.job_id] = record

    def _persist(self, record: JobRecord) -> None:
        path = self._path(record.job_id)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w") as handle:
            json.dump(record.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # -- access --------------------------------------------------------------

    def _record(self, job_id: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise JobError(f"unknown job {job_id!r}")
        return record

    def get(self, job_id: str) -> JobRecord:
        """A defensive copy — mutate through :meth:`update` /
        :meth:`transition`, never on the returned record."""
        with self._lock:
            return JobRecord.from_dict(self._record(job_id).to_dict())

    def list(self, state: Optional[str] = None) -> List[JobRecord]:
        with self._lock:
            records = [
                JobRecord.from_dict(record.to_dict())
                for record in self._jobs.values()
                if state is None or record.state == state
            ]
        return sorted(records, key=lambda r: (r.created_at, r.job_id))

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {state: 0 for state in JOB_STATES}
            for record in self._jobs.values():
                out[record.state] += 1
            return out

    # -- mutation ------------------------------------------------------------

    def create(
        self,
        suite: str,
        spec: dict,
        options: Optional[dict] = None,
        job_id: Optional[str] = None,
    ) -> JobRecord:
        record = JobRecord(
            job_id=job_id or new_job_id(),
            suite=suite,
            spec=spec,
            options=dict(options or {}),
        )
        with self._lock:
            if record.job_id in self._jobs:
                raise JobError(f"duplicate job id {record.job_id!r}")
            self._jobs[record.job_id] = record
            self._persist(record)
            return JobRecord.from_dict(record.to_dict())

    def update(self, job_id: str, **fields) -> JobRecord:
        """Update non-state fields (progress snapshots, mostly) on a
        live job; a terminal job is immutable."""
        with self._lock:
            record = self._record(job_id)
            if record.finished:
                raise JobStateError(
                    f"job {job_id} is already {record.state}"
                )
            for name, value in fields.items():
                if not hasattr(record, name) or name == "state":
                    raise ValueError(f"unknown job field {name!r}")
                setattr(record, name, value)
            self._persist(record)
            return JobRecord.from_dict(record.to_dict())

    def transition(self, job_id: str, state: str, **fields) -> JobRecord:
        """Move a job along the state machine, stamping
        ``started_at``/``finished_at``; illegal moves raise
        :class:`JobStateError`."""
        if state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {state!r}; known: {JOB_STATES}"
            )
        with self._lock:
            record = self._record(job_id)
            if state not in _TRANSITIONS[record.state]:
                raise JobStateError(
                    f"job {job_id} cannot go {record.state} -> {state}"
                )
            record.state = state
            now = time.time()
            if state == "running":
                record.started_at = now
            if state in TERMINAL_STATES:
                record.finished_at = now
            for name, value in fields.items():
                if not hasattr(record, name) or name == "state":
                    raise ValueError(f"unknown job field {name!r}")
                setattr(record, name, value)
            self._persist(record)
            return JobRecord.from_dict(record.to_dict())

    def recover(self) -> List[str]:
        """Re-queue jobs interrupted mid-run by a server death.

        ``running`` records on disk mean the previous process died with
        the job in flight; the store makes re-execution idempotent, so
        they go back to ``queued`` (flagged ``recovered``).  Returns
        the re-queued ids.
        """
        requeued = []
        with self._lock:
            for record in self._jobs.values():
                if record.state != "running":
                    continue
                record.state = "queued"
                record.started_at = None
                record.recovered = True
                self._persist(record)
                requeued.append(record.job_id)
        return sorted(requeued)
