"""HTTP routing for ``repro serve`` — thin translation, no logic.

:class:`Router` is the whole API surface as a pure function:
``(method, path, body) -> (status, content-type, payload bytes)``.  It
only translates HTTP to :class:`~repro.service.service.CampaignService`
calls and service exceptions to status codes — which is what makes the
in-process double in :mod:`repro.service.fakes` exact: handler tests
exercise this very router without opening a socket.

Routes::

    GET  /healthz                  service status + job counts
    POST /suites                   submit {"suite": ..., "options": ...}
    GET  /jobs                     the job table
    GET  /jobs/{id}                one job (live progress snapshot)
    POST /jobs/{id}/cancel         cancel (409 once terminal)
    GET  /results/{key}            artifact metadata (prefix accepted)
    GET  /results/{key}/records    the raw JSONL records

:func:`make_server` binds the router into a stdlib
:class:`~http.server.ThreadingHTTPServer`; :func:`serving` runs one on
a background thread for tests, examples and benches.
"""

from __future__ import annotations

import contextlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, Optional, Tuple

from repro.results.store import ResultStoreError
from repro.service.jobs import JobError, JobStateError
from repro.service.service import CampaignService

__all__ = ["Router", "make_server", "serving"]

JSON_TYPE = "application/json"
JSONL_TYPE = "application/x-ndjson"

Response = Tuple[int, str, bytes]


def _json_response(status: int, payload: object) -> Response:
    body = json.dumps(payload, indent=2, sort_keys=False) + "\n"
    return status, JSON_TYPE, body.encode("utf-8")


class Router:
    """Dispatch one request against a service; never raises — every
    failure is a JSON error response with the matching status code."""

    def __init__(self, service: CampaignService):
        self.service = service

    def route(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Response:
        try:
            return self._dispatch(method, path.split("?", 1)[0], body)
        except JobStateError as exc:
            return _json_response(409, {"error": str(exc)})
        except (JobError, LookupError) as exc:
            return _json_response(404, {"error": str(exc)})
        except ValueError as exc:
            return _json_response(400, {"error": str(exc)})
        except ResultStoreError as exc:
            return _json_response(500, {"error": str(exc)})

    def _dispatch(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Response:
        service = self.service
        segments = [part for part in path.split("/") if part]
        if method == "GET" and segments == ["healthz"]:
            return _json_response(200, service.health())
        if method == "POST" and segments == ["suites"]:
            payload = self._parse_body(body)
            if "suite" not in payload:
                raise ValueError(
                    "the submission body needs a 'suite': a built-in "
                    "name or a full SuiteSpec object"
                )
            record = service.submit(
                payload["suite"], payload.get("options")
            )
            return _json_response(202, record.to_dict())
        if segments and segments[0] == "jobs":
            if method == "GET" and len(segments) == 1:
                return _json_response(
                    200,
                    {
                        "jobs": [
                            record.to_dict()
                            for record in service.list_jobs()
                        ],
                        "counts": service.jobs.counts(),
                    },
                )
            if method == "GET" and len(segments) == 2:
                return _json_response(
                    200, service.job(segments[1]).to_dict()
                )
            if (
                method == "POST"
                and len(segments) == 3
                and segments[2] == "cancel"
            ):
                return _json_response(
                    200, service.cancel(segments[1]).to_dict()
                )
        if segments and segments[0] == "results" and method == "GET":
            if len(segments) == 2:
                return _json_response(200, service.result(segments[1]))
            if len(segments) == 3 and segments[2] == "records":
                payload = service.records(segments[1])
                return 200, JSONL_TYPE, payload.encode("utf-8")
        return _json_response(
            404, {"error": f"no route for {method} {path}"}
        )

    @staticmethod
    def _parse_body(body: Optional[bytes]) -> dict:
        if not body:
            raise ValueError("a JSON request body is required")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError("the request body must be a JSON object")
        return payload


def make_server(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` threading HTTP server over the
    router (``port=0`` binds an ephemeral port — read it back from
    ``server.server_address``)."""
    from repro import __version__

    router = Router(service)

    class Handler(BaseHTTPRequestHandler):
        server_version = f"repro-serve/{__version__}"
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args) -> None:
            if not quiet:
                BaseHTTPRequestHandler.log_message(self, format, *args)

        def _respond(self, response: Response) -> None:
            status, content_type, payload = response
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
            self._respond(router.route("GET", self.path))

        def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            self._respond(router.route("POST", self.path, body))

    server = ThreadingHTTPServer((host, port), Handler)
    server.daemon_threads = True
    return server


@contextlib.contextmanager
def serving(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> Iterator[str]:
    """Serve on a background thread; yields the base URL and shuts the
    server down on exit (tests, the example, the bench)."""
    server = make_server(service, host=host, port=port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    try:
        yield f"http://{bound_host}:{bound_port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
