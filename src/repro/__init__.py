"""repro — reproduction of Kebichi, Zorian & Nicolaidis, DATE 1995:
"Area Versus Detection Latency Trade-Offs in Self-Checking Memory Design".

Public API highlights
---------------------

Quick path (the paper's design flow)::

    from repro import select_code, SelfCheckingMemory, MemoryOrganization

    org = MemoryOrganization(words=2048, bits=16, column_mux=8)
    # tolerate detection within 10 cycles, escape probability <= 1e-9
    memory = SelfCheckingMemory.from_requirements(org, c=10, pndc=1e-9)
    memory.write(42, (1, 0) * 8)
    result = memory.read(42)
    assert not result.error_detected

Layer map
---------

=================  ========================================================
``repro.codes``    parity / Berger / m-out-of-n / two-rail / Hamming codes
``repro.circuits`` gate-level netlists, stuck-at faults, simulation
``repro.decoder``  the §III.2 decoder tree and its analytic fault analysis
``repro.rom``      NOR (ROM) matrices; decoder + ROM composition
``repro.checkers`` parity / m-out-of-n / two-rail / Berger checkers + TSC
                   property verifiers
``repro.memory``   behavioural RAM / ROM / CAM and memory fault models
``repro.area``     the §IV analytic model and the calibrated std-cell model
``repro.core``     code selection, mappings, latency math, the figure-3
                   scheme, safety model, trade-off explorer
``repro.faultsim`` Monte-Carlo fault-injection campaigns
``repro.experiments``  regenerators for every table/figure of the paper
=================  ========================================================
"""

from repro.area.model import PaperAreaModel
from repro.area.stdcell import StdCellAreaModel
from repro.codes.m_out_of_n import MOutOfNCode, maximal_code_for_width
from repro.codes.parity import ParityCode
from repro.core.latency import (
    escape_probability,
    pndc,
    worst_escape_over_blocks,
)
from repro.core.mapping import (
    IdentityMapping,
    ModAMapping,
    ParityMapping,
    mapping_for_code,
)
from repro.core.safety import SafetyModel
from repro.core.scheme import ReadResult, SelfCheckingMemory
from repro.core.selection import (
    CodeSelection,
    SelectionPolicy,
    select_code,
    select_zero_latency_code,
)
from repro.core.tradeoff import TradeoffExplorer
from repro.memory.organization import (
    PAPER_ORGS,
    MemoryOrganization,
    paper_org,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MOutOfNCode",
    "maximal_code_for_width",
    "ParityCode",
    "select_code",
    "select_zero_latency_code",
    "SelectionPolicy",
    "CodeSelection",
    "ModAMapping",
    "ParityMapping",
    "IdentityMapping",
    "mapping_for_code",
    "escape_probability",
    "worst_escape_over_blocks",
    "pndc",
    "SelfCheckingMemory",
    "ReadResult",
    "SafetyModel",
    "TradeoffExplorer",
    "MemoryOrganization",
    "PAPER_ORGS",
    "paper_org",
    "PaperAreaModel",
    "StdCellAreaModel",
]
