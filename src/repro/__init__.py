"""repro — reproduction of Kebichi, Zorian & Nicolaidis, DATE 1995:
"Area Versus Detection Latency Trade-Offs in Self-Checking Memory Design".

Public API highlights
---------------------

Quick path (the paper's design flow, via the unified design API)::

    from repro import DesignSpec, DesignEngine

    # declare the problem: a 2K x 16 RAM that must flag decoder faults
    # within 10 cycles with escape probability <= 1e-9
    spec = DesignSpec(words=2048, bits=16, c=10, pndc=1e-9)

    engine = DesignEngine()
    report = engine.evaluate(spec)   # structured DesignReport
    print(report.render())           # ...or report.to_json()

    memory = engine.build(spec)      # a working figure-3 memory
    memory.write(42, (1, 0) * 8)
    assert not memory.read(42).error_detected

Batch exploration: ``engine.sweep(DesignSpec.grid(...), workers=4)``.
The pre-1.1 entry points (``SelfCheckingMemory.from_requirements``,
``select_code`` + ``from_selection``, ``design_report``) remain as thin
shims over the same machinery.

Layer map
---------

=================  ========================================================
``repro.design``   the unified front door: DesignSpec -> DesignEngine ->
                   DesignReport, plus the code/checker/mapping registries
``repro.codes``    parity / Berger / m-out-of-n / two-rail / Hamming codes
``repro.circuits`` gate-level netlists, stuck-at faults, simulation
``repro.decoder``  the §III.2 decoder tree and its analytic fault analysis
``repro.rom``      NOR (ROM) matrices; decoder + ROM composition
``repro.checkers`` parity / m-out-of-n / two-rail / Berger checkers + TSC
                   property verifiers
``repro.memory``   behavioural RAM / ROM / CAM and memory fault models
``repro.area``     the §IV analytic model and the calibrated std-cell model
``repro.core``     code selection, mappings, latency math, the figure-3
                   scheme, safety model, trade-off explorer
``repro.scenarios`` the unified scenario layer: Workload stimuli,
                   FaultScenario hierarchy, CampaignEngine facade
``repro.results``  the unified results layer: provenance-stamped
                   ResultSet artifacts (streaming JSONL, merge/filter/
                   group_by/diff) + the content-addressed ResultStore
                   campaign cache
``repro.faultsim`` fault-injection campaigns: packed bit-parallel
                   engine (default), the NumPy lane-array vector
                   engine (``repro[vector]``) + the serial reference
                   oracle
``repro.suite``    the batch layer: declarative SuiteSpec campaign
                   matrices, a pooled SuiteRunner with store-backed
                   resume, SuiteReport aggregation, the built-in
                   paper_grid suite
``repro.service``  the traffic layer: an HTTP/JSON job service over
                   the suite runner and the shared store — persistent
                   JobQueue, CampaignService worker pool, stdlib
                   server + ServiceClient (``repro serve``)
``repro.analysis`` the static layer: registry-driven design linter +
                   TSC property prover — ``analyze(obj)`` over netlists,
                   checkers, decoders, built memories and suite specs
                   (``repro lint``)
``repro.analytics`` the trend layer: bench-history loading, windowed
                   regression detection, provenance-grouped store/
                   service trends, JSON + HTML reporting
                   (``repro analytics regress|report``)
``repro.experiments``  regenerators for every table/figure of the paper
=================  ========================================================

Campaign quick path (1.3+)::

    from repro import CampaignEngine, Workload, TransientScenario

    engine = CampaignEngine(store=".repro-store")  # cached campaigns (1.4)
    result = engine.transient(
        ram,
        [TransientScenario.single(address=5, bit=2, cycle=100)],
        Workload.scrubbed(words=256, cycles=4096, scrub_period=8, seed=1),
    )
    artifact = result.to_result_set()    # provenance-stamped, JSONL-able
    # an identical re-run is now a verified store hit — the simulator
    # is never invoked; inspect with `repro results ls/show/diff`

Suite quick path (1.5+)::

    from repro.suite import SuiteRunner, builtin_suite

    report = SuiteRunner(store=".repro-store", workers=4).run(
        builtin_suite("paper_grid")
    )
    # re-running resumes: every completed cell is a verified store hit
    # (CLI: `repro suite run paper_grid --store .repro-store`)

Service quick path (1.6+)::

    from repro import CampaignService, ServiceClient
    from repro.service import serving

    with CampaignService(store=".repro-store", workers=2) as service:
        with serving(service) as url:        # or: repro serve
            client = ServiceClient(url)
            job = client.submit("paper_grid")
            job = client.wait(job["job_id"])
            # a re-submitted identical suite completes as verified
            # store hits — the simulator is never invoked

Static-analysis quick path (1.8+)::

    from repro import DesignSpec, analyze

    report = analyze(DesignSpec(words=2048, bits=16))
    assert report.ok                     # TSC properties proven, not sampled
    print(report.render())               # ...or report.to_json()
    # CLI: `repro lint 16x2K --strict`; build-time gate:
    # `DesignEngine().build(spec, lint=True)` raises AnalysisError

Trend-analytics quick path (1.9+)::

    from repro.analytics import build_report, run_regress

    gate = run_regress("BENCH_*.history.jsonl")   # windowed baselines
    assert gate.ok, gate.render()                 # exit-2 contract
    html = build_report(store=".repro-store").to_html()
    # CLI: `repro analytics regress` (CI's bench-regress gate) and
    # `repro analytics report --out report.html`
"""

from repro.analysis import AnalysisError, AnalysisReport, analyze
from repro.area.model import PaperAreaModel
from repro.area.stdcell import StdCellAreaModel
from repro.codes.m_out_of_n import MOutOfNCode, maximal_code_for_width
from repro.codes.parity import ParityCode
from repro.core.latency import (
    escape_probability,
    pndc,
    worst_escape_over_blocks,
)
from repro.core.mapping import (
    IdentityMapping,
    ModAMapping,
    ParityMapping,
    mapping_for_code,
)
from repro.core.safety import SafetyModel
from repro.core.scheme import ReadResult, SelfCheckingMemory
from repro.core.selection import (
    CodeSelection,
    SelectionPolicy,
    select_code,
    select_zero_latency_code,
)
from repro.core.tradeoff import TradeoffExplorer
from repro.design import DesignEngine, DesignReport, DesignSpec
from repro.memory.organization import (
    PAPER_ORGS,
    MemoryOrganization,
    paper_org,
)
from repro.results import (
    Provenance,
    ResultSet,
    ResultStore,
)
from repro.scenarios import (
    CampaignEngine,
    FaultScenario,
    MemoryScenario,
    StructuralScenario,
    TransientScenario,
    Workload,
)
from repro.service import CampaignService, ServiceClient

__version__ = "1.9.0"

__all__ = [
    "__version__",
    "analyze",
    "AnalysisReport",
    "AnalysisError",
    "DesignSpec",
    "DesignEngine",
    "DesignReport",
    "CampaignEngine",
    "CampaignService",
    "ServiceClient",
    "Workload",
    "ResultSet",
    "ResultStore",
    "Provenance",
    "FaultScenario",
    "StructuralScenario",
    "MemoryScenario",
    "TransientScenario",
    "MOutOfNCode",
    "maximal_code_for_width",
    "ParityCode",
    "select_code",
    "select_zero_latency_code",
    "SelectionPolicy",
    "CodeSelection",
    "ModAMapping",
    "ParityMapping",
    "IdentityMapping",
    "mapping_for_code",
    "escape_probability",
    "worst_escape_over_blocks",
    "pndc",
    "SelfCheckingMemory",
    "ReadResult",
    "SafetyModel",
    "TradeoffExplorer",
    "MemoryOrganization",
    "PAPER_ORGS",
    "paper_org",
    "PaperAreaModel",
    "StdCellAreaModel",
]
