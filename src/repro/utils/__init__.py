"""Shared low-level utilities: combinatorics and bit manipulation."""

from repro.utils.bitops import (
    all_bit_vectors,
    bit_slice,
    bits_to_int,
    hamming_distance,
    int_to_bits,
    parity_of,
    popcount,
)
from repro.utils.combinatorics import (
    binomial,
    central_binomial,
    max_constant_weight_cardinality,
    smallest_r_for_cardinality,
)

__all__ = [
    "all_bit_vectors",
    "binomial",
    "bit_slice",
    "bits_to_int",
    "central_binomial",
    "hamming_distance",
    "int_to_bits",
    "max_constant_weight_cardinality",
    "parity_of",
    "popcount",
    "smallest_r_for_cardinality",
]
