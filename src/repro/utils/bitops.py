"""Bit-level helpers shared by codes, circuits and memory models.

Bit vectors are represented as tuples of ints (0/1), most-significant bit
first, matching how the paper writes address vectors (a1 ... an with a1 the
most significant input of the decoder).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = [
    "popcount",
    "parity_of",
    "int_to_bits",
    "bits_to_int",
    "bit_slice",
    "all_bit_vectors",
    "hamming_distance",
]


def popcount(value: int) -> int:
    """Number of set bits of a non-negative integer.

    >>> popcount(0b1011)
    3
    """
    if value < 0:
        raise ValueError(f"popcount requires a non-negative int, got {value}")
    return bin(value).count("1")


def parity_of(value: int) -> int:
    """Even/odd parity (1 iff an odd number of set bits).

    >>> parity_of(0b101)
    0
    >>> parity_of(0b100)
    1
    """
    return popcount(value) & 1


def int_to_bits(value: int, width: int) -> Tuple[int, ...]:
    """Encode ``value`` as a width-``width`` MSB-first bit tuple.

    >>> int_to_bits(5, 4)
    (0, 1, 0, 1)
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def bits_to_int(bits: Sequence[int]) -> int:
    """Decode an MSB-first bit sequence back into an integer.

    >>> bits_to_int((0, 1, 0, 1))
    5
    """
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit vector may contain only 0/1, got {bit!r}")
        value = (value << 1) | bit
    return value


def bit_slice(value: int, width: int, lo: int, hi: int) -> int:
    """Extract bits ``lo .. hi-1`` (LSB-indexed, half-open) of ``value``.

    ``bit_slice(v, w, 0, w)`` is ``v`` itself.

    >>> bit_slice(0b110101, 6, 1, 4)   # bits 1..3 -> 0b010
    2
    """
    if not 0 <= lo <= hi <= width:
        raise ValueError(f"invalid slice [{lo}, {hi}) for width {width}")
    mask = (1 << (hi - lo)) - 1
    return (value >> lo) & mask


def all_bit_vectors(width: int) -> Iterable[Tuple[int, ...]]:
    """Yield every MSB-first bit vector of the given width, in numeric order."""
    for value in range(1 << width):
        yield int_to_bits(value, width)


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Hamming distance between two equal-length bit vectors.

    >>> hamming_distance((0, 1, 1), (1, 1, 0))
    2
    """
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return sum(1 for x, y in zip(a, b) if x != y)
