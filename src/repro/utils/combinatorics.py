"""Combinatorial helpers used throughout the code-selection machinery.

The paper's code selection repeatedly needs binomial coefficients
``C(r, q)`` (the cardinality of a q-out-of-r constant-weight code) and the
smallest width ``r`` whose maximal constant-weight code reaches a target
cardinality.  Everything here is exact integer arithmetic.
"""

from __future__ import annotations

import math

__all__ = [
    "binomial",
    "central_binomial",
    "max_constant_weight_cardinality",
    "smallest_r_for_cardinality",
]


def binomial(n: int, k: int) -> int:
    """Exact binomial coefficient ``C(n, k)``; zero outside ``0 <= k <= n``.

    >>> binomial(5, 3)
    10
    >>> binomial(3, 5)
    0
    """
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


def central_binomial(r: int) -> int:
    """Cardinality of the densest constant-weight code of length ``r``.

    A q-out-of-r code has ``C(r, q)`` code words, maximised at
    ``q = floor(r/2)`` (equivalently ``ceil(r/2)`` — the two are equal by
    symmetry of Pascal's triangle).  The paper restricts itself to these
    maximal codes because they need the fewest bits for a given number of
    code words.

    >>> central_binomial(5)
    10
    >>> central_binomial(4)
    6
    """
    if r < 0:
        raise ValueError(f"code width must be non-negative, got {r}")
    return math.comb(r, r // 2)


def max_constant_weight_cardinality(r: int) -> int:
    """Alias of :func:`central_binomial` with a self-describing name."""
    return central_binomial(r)


def smallest_r_for_cardinality(target: int) -> int:
    """Smallest width ``r`` with ``C(r, floor(r/2)) >= target``.

    This is the paper's rule: "we select the code q-out-of-r with minimum r
    that satisfies C(r, q) >= a and q = floor(r/2) (or ceil(r/2))".

    >>> smallest_r_for_cardinality(9)    # 3-out-of-5 has C = 10
    5
    >>> smallest_r_for_cardinality(2)    # 1-out-of-2
    2
    >>> smallest_r_for_cardinality(1001) # 6-out-of-13 has C = 1716
    13
    """
    if target < 1:
        raise ValueError(f"target cardinality must be >= 1, got {target}")
    r = 1
    while central_binomial(r) < target:
        r += 1
    return r
