"""Command-line interface: ``python -m repro <command>``.

Commands mirror the experiment regenerators plus the designer-facing
flows (code selection, full design reports).  Everything prints plain
text and needs no network or data files.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.report import design_report
from repro.core.selection import SelectionPolicy, select_code
from repro.memory.organization import MemoryOrganization

__all__ = ["main", "build_parser"]


def _cmd_select(args: argparse.Namespace) -> int:
    policy = SelectionPolicy(args.policy)
    selection = select_code(args.cycles, args.pndc, policy=policy)
    print(selection.describe())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    org = MemoryOrganization(
        words=args.words, bits=args.bits, column_mux=args.mux
    )
    print(
        design_report(
            org,
            c=args.cycles,
            pndc=args.pndc,
            policy=SelectionPolicy(args.policy),
            column_zero_latency=not args.shared_column_code,
        )
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import table1

    table1.main()
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments import table2

    table2.main()
    return 0


def _cmd_safety(args: argparse.Namespace) -> int:
    from repro.experiments import safety_example

    safety_example.main()
    return 0


def _cmd_area_example(args: argparse.Namespace) -> int:
    from repro.experiments import area_example

    area_example.main()
    return 0


def _cmd_structure(args: argparse.Namespace) -> int:
    from repro.experiments import structure

    structure.main()
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.experiments import latency_empirical

    latency_empirical.main()
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    ablations.main()
    return 0


def _cmd_ecc(args: argparse.Namespace) -> int:
    from repro.experiments import ecc_baseline

    ecc_baseline.main()
    return 0


def _cmd_decoder_style(args: argparse.Namespace) -> int:
    from repro.experiments import decoder_style

    decoder_style.main()
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    figures.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Area Versus Detection Latency Trade-Offs in "
            "Self-Checking Memory Design' (DATE 1995)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    select = sub.add_parser(
        "select", help="size an unordered code from (c, Pndc)"
    )
    select.add_argument("--cycles", "-c", type=int, required=True)
    select.add_argument("--pndc", "-p", type=float, required=True)
    select.add_argument(
        "--policy",
        choices=[p.value for p in SelectionPolicy],
        default=SelectionPolicy.EXACT.value,
    )
    select.set_defaults(func=_cmd_select)

    report = sub.add_parser(
        "report", help="full design report for one memory + requirement"
    )
    report.add_argument("--words", type=int, required=True)
    report.add_argument("--bits", type=int, required=True)
    report.add_argument("--mux", type=int, default=8)
    report.add_argument("--cycles", "-c", type=int, required=True)
    report.add_argument("--pndc", "-p", type=float, required=True)
    report.add_argument(
        "--policy",
        choices=[p.value for p in SelectionPolicy],
        default=SelectionPolicy.EXACT.value,
    )
    report.add_argument(
        "--shared-column-code",
        action="store_true",
        help="use the row code on the column decoder (tables' convention) "
        "instead of a zero-latency column mapping",
    )
    report.set_defaults(func=_cmd_report)

    for name, func, help_text in (
        ("table1", _cmd_table1, "regenerate Table 1"),
        ("table2", _cmd_table2, "regenerate Table 2"),
        ("safety", _cmd_safety, "regenerate the SII safety example"),
        ("area-example", _cmd_area_example, "regenerate the SIV example"),
        ("structure", _cmd_structure, "verify the figure-3 structure"),
        ("latency", _cmd_latency, "empirical latency validation"),
        ("ablations", _cmd_ablations, "odd-a and unordered-code ablations"),
        ("ecc-baseline", _cmd_ecc, "SEC-DED baseline comparison"),
        (
            "decoder-style",
            _cmd_decoder_style,
            "single-level vs multilevel decoder comparison",
        ),
        ("figures", _cmd_figures, "ASCII trade-off and survival curves"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.set_defaults(func=func)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
