"""Command-line interface: ``python -m repro <command>``.

Redesigned on top of the :mod:`repro.design` subsystem: every command
supports ``--json`` for machine-readable output (and ``--out PATH`` to
write it to a file), ``sweep`` drives ``DesignEngine.sweep`` across a
requirement grid, ``registry`` lists the pluggable families, and the ten
experiment regenerators are generated from one table instead of ten
copy-pasted handlers.  Everything runs offline — no network, no data
files.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import io
import json
import os
import sys
import time
from dataclasses import asdict, dataclass
from typing import Callable, List, Optional

from repro import __version__
from repro.core.selection import SelectionPolicy, select_code
from repro.design.engine import DesignEngine
from repro.design.spec import CHECKER_STYLES, DesignSpec
from repro.memory.organization import PAPER_ORGS, MemoryOrganization, paper_org

__all__ = ["main", "build_parser", "EXPERIMENTS"]


def _emit(args: argparse.Namespace, text: str) -> None:
    """Print ``text`` and/or write it to ``--out``."""
    out_path = getattr(args, "out", None)
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(text)
        print(f"wrote {out_path}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def _add_output_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the output to a file"
    )


#: campaign engine policies the CLI accepts (--engine)
ENGINE_CHOICES = ("serial", "packed", "vector", "auto")


def _validate_engine_args(args: argparse.Namespace) -> None:
    """--workers only applies to the parallel engines; refuse the combo
    (and nonsensical counts) rather than silently running
    single-process."""
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        raise ValueError(f"--workers must be >= 1, got {workers}")
    if getattr(args, "engine", "packed") == "serial" and workers is not None:
        raise ValueError(
            "--workers requires the packed or vector engine "
            "(drop --engine serial)"
        )


def _add_engine_aliases(group, dest: str) -> None:
    """Deprecated --packed/--serial aliases for --engine packed/serial."""
    group.add_argument(
        "--packed",
        dest=dest,
        action="store_const",
        const="packed",
        help="deprecated alias for --engine packed",
    )
    group.add_argument(
        "--serial",
        dest=dest,
        action="store_const",
        const="serial",
        help="deprecated alias for --engine serial",
    )


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """--engine policy switch + --workers for campaign commands."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="packed",
        help="campaign engine: packed (bit-parallel, default), vector "
        "(NumPy lane arrays, needs repro[vector]), serial (per-cycle "
        "oracle), auto (vector when NumPy is importable)",
    )
    _add_engine_aliases(group, "engine")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard the fault list over N processes "
        "(packed/vector engines)",
    )


def _add_policy_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy",
        choices=[p.value for p in SelectionPolicy],
        default=SelectionPolicy.EXACT.value,
    )


#: default artifact-store root for `repro results` (campaign commands
#: only cache when --store is given explicitly)
DEFAULT_STORE = ".repro-store"


def _default_store() -> str:
    return os.environ.get("REPRO_STORE", DEFAULT_STORE)


def _add_store_options(
    parser: argparse.ArgumentParser, required_default: bool = False
) -> None:
    """--store/--no-cache: the content-addressed campaign cache.

    Campaign commands default to no store (opt-in caching); the
    ``results`` inspection commands default to ``$REPRO_STORE`` or
    ``.repro-store`` since they are meaningless without one.
    """
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=_default_store() if required_default else None,
        help="content-addressed result store directory; identical "
        "campaign re-runs are served from it (hash-verified)",
    )
    if not required_default:
        parser.add_argument(
            "--no-cache",
            action="store_true",
            help="skip the store lookup but still refresh the entry",
        )


# -- designer-facing commands ------------------------------------------------


def _cmd_select(args: argparse.Namespace) -> int:
    policy = SelectionPolicy(args.policy)
    selection = select_code(args.cycles, args.pndc, policy=policy)
    if args.json:
        _emit(args, json.dumps(selection.to_dict(), indent=2))
    else:
        _emit(args, selection.describe())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    _validate_engine_args(args)
    spec = DesignSpec(
        words=args.words,
        bits=args.bits,
        column_mux=args.mux,
        c=args.cycles,
        pndc=args.pndc,
        policy=args.policy,
        column_zero_latency=not args.shared_column_code,
        checker_style=args.checker_style,
        decoder_style=args.decoder_style,
        workload=args.workload,
    )
    engine = DesignEngine(
        store=args.store, cache=not args.no_cache
    )
    report = engine.evaluate(
        spec,
        empirical=args.empirical,
        empirical_cycles=args.empirical_cycles,
        engine=args.engine,
        workers=args.workers,
    )
    _emit(args, report.to_json(indent=2) if args.json else report.render())
    return 0


def _parse_org(text: str) -> MemoryOrganization:
    """An organisation: a paper label ('16x2K') or 'WORDSxBITSxMUX'."""
    try:
        return paper_org(text)
    except KeyError:
        pass
    parts = text.lower().split("x")
    if len(parts) in (2, 3):
        try:
            numbers = [int(part) for part in parts]
        except ValueError:
            numbers = None
        if numbers:
            words, bits = numbers[0], numbers[1]
            mux = numbers[2] if len(numbers) == 3 else 8
            if bits > words:
                # almost certainly a transposed paper-style label
                # ('16x2048'): the labels read BITSxWORDS, this form
                # reads WORDSxBITS — refuse rather than size a
                # 16-word x 2048-bit memory nobody meant
                raise argparse.ArgumentTypeError(
                    f"{text!r} reads as {words} words x {bits} bits; "
                    f"the numeric form is WORDSxBITS[xMUX] (did you "
                    f"mean '{bits}x{words}'?)"
                )
            return MemoryOrganization(
                words=words, bits=bits, column_mux=mux
            )
    raise argparse.ArgumentTypeError(
        f"organisation {text!r} is neither a paper label "
        f"({[o.label() for o in PAPER_ORGS]}) nor WORDSxBITS[xMUX]"
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    organizations = args.org or list(PAPER_ORGS)
    requirements = [
        (c, pndc) for c in args.cycles for pndc in args.pndc
    ]
    specs = DesignSpec.grid(
        organizations,
        requirements,
        policy=args.policy,
        column_zero_latency=not args.shared_column_code,
    )
    reports = DesignEngine(
        store=args.store, cache=not args.no_cache
    ).sweep(specs, workers=args.workers, executor=args.executor)
    if args.json:
        _emit(
            args,
            json.dumps([report.to_dict() for report in reports], indent=2),
        )
        return 0
    from repro.experiments.common import format_table

    rows = [
        [
            report.spec.organization.label(),
            report.spec.c,
            f"{report.spec.pndc:g}",
            report.row.code,
            report.row.a_final,
            f"{float(report.row.escape_per_cycle):.4g}",
            f"{report.area.stdcell_overhead_percent:.2f}",
        ]
        for report in reports
    ]
    table = format_table(
        ["memory", "c", "Pndc", "row code", "a", "escape/cycle", "area %"],
        rows,
    )
    _emit(
        args,
        f"design sweep — {len(reports)} specs "
        f"(workers={args.workers or 1})\n" + table,
    )
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    from repro.design.registry import CHECKERS, CODES, DECODERS, MAPPINGS

    families = {
        "codes": CODES.names(),
        "checkers": CHECKERS.names(),
        "mappings": MAPPINGS.names(),
        "decoders": DECODERS.names(),
    }
    if args.json:
        _emit(args, json.dumps(families, indent=2))
    else:
        lines = [
            f"{family:<9}: {', '.join(names)}"
            for family, names in families.items()
        ]
        _emit(args, "\n".join(lines))
    return 0


# -- static analysis: `repro lint` -------------------------------------------


def _resolve_lint_target(args: argparse.Namespace):
    """What ``repro lint TARGET`` analyzes: a SuiteSpec JSON file, a
    DesignSpec JSON file, a built-in suite name, or an organisation
    label/WORDSxBITS[xMUX] (turned into a DesignSpec with the
    -c/--pndc requirement)."""
    text = args.target
    if os.path.isfile(text):
        with open(text) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{text}: malformed JSON: {exc}") from None
        if isinstance(data, dict) and "blocks" in data:
            from repro.suite.spec import SuiteSpec

            return SuiteSpec.from_dict(data)
        if isinstance(data, dict):
            return DesignSpec.from_dict(data)
        raise ValueError(
            f"{text}: expected a JSON object (SuiteSpec or DesignSpec)"
        )
    from repro.suite import builtin_names, builtin_suite

    if text in builtin_names():
        return builtin_suite(text)
    try:
        org = _parse_org(text)
    except argparse.ArgumentTypeError as exc:
        raise ValueError(
            f"lint target {text!r} is not a spec file, a built-in suite "
            f"({', '.join(builtin_names())}) or an organisation: {exc}"
        ) from None
    return DesignSpec(
        words=org.words,
        bits=org.bits,
        column_mux=org.column_mux,
        c=args.cycles,
        pndc=args.pndc,
    )


def _split_rule_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part for part in value.split(",") if part)
    return out


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import RULES, rules_for

    if args.list_rules:
        from repro.analysis.base import RULE_KINDS
        from repro.experiments.common import format_table

        rules = [
            rule for kind in RULE_KINDS for rule in rules_for(kind)
        ]
        if args.json:
            payload = [
                {
                    "id": rule.id,
                    "kind": rule.kind,
                    "severity": rule.severity,
                    "summary": rule.summary,
                }
                for rule in rules
            ]
            _emit(args, json.dumps(payload, indent=2))
            return 0
        table = format_table(
            ["rule", "kind", "severity", "summary"],
            [[r.id, r.kind, r.severity, r.summary] for r in rules],
        )
        _emit(args, f"registered analysis rules ({len(rules)})\n" + table)
        return 0

    if args.target is None:
        raise ValueError("a lint target is required (or use --list-rules)")
    only = _split_rule_ids(args.rules)
    skip = _split_rule_ids(args.skip) or []
    unknown = [
        rule_id
        for rule_id in (only or []) + skip
        if rule_id not in RULES
    ]
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {unknown}; see `repro lint --list-rules`"
        )
    from repro.analysis import analyze

    report = analyze(_resolve_lint_target(args), rules=only, skip=skip)
    _emit(
        args, report.to_json(indent=2) if args.json else report.render()
    )
    return report.exit_code(strict=args.strict)


# -- trend analytics: `repro analytics regress|report` -----------------------


def _validate_analytics_args(args: argparse.Namespace) -> None:
    if args.window < 1:
        raise ValueError(f"--window must be >= 1, got {args.window}")
    if args.tolerance is not None and args.tolerance < 0:
        raise ValueError(
            f"--tolerance must be >= 0, got {args.tolerance:g}"
        )


def _cmd_analytics_regress(args: argparse.Namespace) -> int:
    from repro.analytics import run_regress

    _validate_analytics_args(args)
    report = run_regress(
        args.history or DEFAULT_HISTORY_GLOB,
        window=args.window,
        tolerance_pct=args.tolerance,
        only=_split_rule_ids(args.only),
        skip=_split_rule_ids(args.skip),
    )
    _emit(
        args,
        report.to_json(indent=2)
        if args.json
        else report.render(verbose=args.verbose),
    )
    return report.exit_code()


def _cmd_analytics_report(args: argparse.Namespace) -> int:
    from repro.analytics import build_report

    _validate_analytics_args(args)
    store = None
    if args.store:
        if not os.path.isdir(args.store):
            raise ValueError(
                f"no result store at {args.store!r} (create one by "
                f"running a campaign command with --store "
                f"{args.store})"
            )
        from repro.results import ResultStore

        store = ResultStore(args.store)
    client = None
    if args.url:
        from repro.service import ServiceClient

        client = ServiceClient(args.url)
    report = build_report(
        args.history or DEFAULT_HISTORY_GLOB,
        store=store,
        client=client,
        window=args.window,
        tolerance_pct=args.tolerance,
    )
    if args.json:
        _emit(args, report.to_json(indent=2))
    elif args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_html())
        print(f"wrote {args.out}")
    else:
        _emit(args, report.render())
    return 0


#: what `repro analytics` reads when --history is not given
DEFAULT_HISTORY_GLOB = "BENCH_*.history.jsonl"


# -- artifact-store inspection: `repro results ls|show|diff|export` ----------


def _open_store(args: argparse.Namespace):
    from repro.results import ResultStore

    if not os.path.isdir(args.store):
        raise ValueError(
            f"no result store at {args.store!r} (create one by running a "
            f"campaign command with --store {args.store})"
        )
    return ResultStore(args.store)


def _cmd_results_ls(args: argparse.Namespace) -> int:
    store = _open_store(args)
    entries = store.entries()
    if args.json:
        _emit(
            args,
            json.dumps([entry.to_dict() for entry in entries], indent=2),
        )
        return 0
    from repro.experiments.common import format_table

    rows = [
        [
            entry.key[:12],
            entry.campaign or "?",
            entry.engine or "-",
            entry.faults,
            "-" if entry.coverage is None else f"{entry.coverage:.4f}",
            entry.cycles_simulated,
            f"{entry.size_bytes / 1024:.1f}K",
            time.strftime(
                "%Y-%m-%d %H:%M", time.localtime(entry.created_at)
            ),
        ]
        for entry in entries
    ]
    table = format_table(
        ["key", "campaign", "engine", "faults", "coverage", "cycles",
         "size", "created"],
        rows,
    )
    _emit(
        args,
        f"result store {store.root} — {len(entries)} campaign(s)\n" + table,
    )
    return 0


def _cmd_results_show(args: argparse.Namespace) -> int:
    store = _open_store(args)
    key = store.resolve(args.key)
    result = store.get(key)
    payload = {
        "key": key,
        "summary": result.summary(),
        "by_kind": {
            kind: group.summary()
            for kind, group in sorted(result.by_kind().items())
        },
        "provenance": [p.to_dict() for p in result.provenances],
    }
    if args.json:
        _emit(args, json.dumps(payload, indent=2))
        return 0
    lines = [f"result set {key}"]
    for field_name, value in payload["summary"].items():
        lines.append(f"    {field_name:<21}: {value}")
    for kind, summary in payload["by_kind"].items():
        lines.append(
            f"    kind {kind:<16}: {summary['detected']}/{summary['faults']}"
            f" detected (coverage {summary['coverage']})"
        )
    for provenance in payload["provenance"]:
        lines.append(
            "    provenance           : "
            + ", ".join(
                f"{k}={v}"
                for k, v in provenance.items()
                if k in ("campaign", "engine", "workload", "scenario_count",
                         "repro_version")
            )
        )
    _emit(args, "\n".join(lines))
    return 0


def _cmd_results_diff(args: argparse.Namespace) -> int:
    store = _open_store(args)
    left = store.get(store.resolve(args.left))
    right = store.get(store.resolve(args.right))
    diff = left.diff(right)
    if args.json:
        _emit(args, json.dumps(diff.to_dict(), indent=2))
    else:
        _emit(args, diff.render())
    return 0 if diff.identical else 2


def _cmd_results_export(args: argparse.Namespace) -> int:
    store = _open_store(args)
    key = store.resolve(args.key)
    result = store.get(key)  # hash-verified read
    if args.out:
        result.write_jsonl(args.out)
        print(f"wrote {args.out}")
    else:
        print(result.to_jsonl(), end="")
    return 0


# -- store lifecycle: `repro store stats|verify` -----------------------------


def _cmd_store_stats(args: argparse.Namespace) -> int:
    store = _open_store(args)
    usage = store.usage()
    if args.json:
        _emit(args, json.dumps(usage, indent=2))
        return 0
    lines = [f"result store {usage['root']}"]
    for name in ("campaigns", "shards", "reports"):
        lines.append(f"    {name:<14}: {usage[name]}")
    for name in ("payload_bytes", "report_bytes", "total_bytes"):
        lines.append(
            f"    {name:<14}: {usage[name]} "
            f"({usage[name] / 1024:.1f}K)"
        )
    _emit(args, "\n".join(lines))
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    store = _open_store(args)
    outcome = store.verify_all()
    if args.json:
        _emit(args, json.dumps(outcome, indent=2))
    else:
        lines = [
            f"verified {outcome['checked']} artifact(s) in "
            f"{outcome['root']}: {outcome['entries']} campaign/shard "
            f"payload(s), {outcome['reports']} report(s)"
        ]
        for failure in outcome["failures"]:
            lines.append(f"    FAIL {failure}")
        lines.append(
            "store ok" if outcome["ok"]
            else f"{len(outcome['failures'])} artifact(s) failed "
            f"verification"
        )
        _emit(args, "\n".join(lines))
    return 0 if outcome["ok"] else 2


# -- the campaign service: `repro serve|submit|jobs|fetch` -------------------


#: default service endpoint for the client subcommands
DEFAULT_URL = "http://127.0.0.1:8032"


def _default_url() -> str:
    return os.environ.get("REPRO_URL", DEFAULT_URL)


def _add_url_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url",
        metavar="URL",
        default=_default_url(),
        help="service endpoint (defaults to $REPRO_URL or "
        f"{DEFAULT_URL})",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import CampaignService, make_server

    if args.workers is not None and args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")
    service = CampaignService(
        store=args.store, workers=args.workers or 2, resume=True
    )
    server = make_server(
        service, host=args.host, port=args.port, quiet=args.quiet
    )
    host, port = server.server_address[:2]
    print(
        f"repro service on http://{host}:{port} "
        f"(store {service.store_root}, {service.workers} job worker(s))",
        file=sys.stderr,
        flush=True,
    )
    if service.recovered:
        print(
            f"recovered {len(service.recovered)} interrupted job(s): "
            f"{', '.join(service.recovered)}",
            file=sys.stderr,
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
        print("repro service stopped", file=sys.stderr)
    return 0


def _job_progress(stream) -> Callable[[dict], None]:
    def emit(job: dict) -> None:
        snapshot = job.get("progress") or {}
        if "completed" not in snapshot:
            return
        print(
            f"[{snapshot['completed']}/{snapshot['total']}] "
            f"{snapshot.get('cell')}: {snapshot.get('status')}",
            file=stream,
        )

    return emit


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    if os.path.isfile(args.suite):
        with open(args.suite) as handle:
            try:
                suite = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{args.suite}: malformed suite spec: {exc}"
                ) from None
    else:
        suite = args.suite
    client = ServiceClient(args.url)
    job = client.submit(
        suite,
        workers=args.workers,
        only=args.only,
        engine=args.engine_override,
        cache=False if args.no_cache else None,
    )
    if not args.wait:
        if args.json:
            _emit(args, json.dumps(job, indent=2))
        else:
            _emit(
                args,
                f"job {job['job_id']} {job['state']} "
                f"(suite {job['suite']}) — poll with "
                f"`repro jobs {job['job_id']}`",
            )
        return 0
    progress = None if args.quiet else _job_progress(sys.stderr)
    job = client.wait(
        job["job_id"], timeout=args.timeout, progress=progress
    )
    if args.json:
        _emit(args, json.dumps(job, indent=2))
    else:
        execution = (job.get("report") or {}).get("execution") or {}
        _emit(
            args,
            f"job {job['job_id']}: {job['state']} — "
            f"{execution.get('hits', 0)} hit(s), "
            f"{execution.get('simulated', 0)} simulated, "
            f"{execution.get('errors', 0)} error(s)"
            + (f" [{job['error']}]" if job.get("error") else ""),
        )
    return 0 if job["state"] == "done" else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id:
        job = client.job(args.job_id)
        if args.json:
            _emit(args, json.dumps(job, indent=2))
            return 0
        lines = [f"job {job['job_id']} ({job['suite']}): {job['state']}"]
        snapshot = job.get("progress") or {}
        if "completed" in snapshot:
            lines.append(
                f"    progress: {snapshot['completed']}/"
                f"{snapshot['total']} ({snapshot.get('cell')})"
            )
        if job.get("error"):
            lines.append(f"    error   : {job['error']}")
        for key in job.get("result_keys") or ():
            lines.append(f"    result  : {key[:12]}…")
        _emit(args, "\n".join(lines))
        return 0
    jobs = client.jobs()
    if args.json:
        _emit(args, json.dumps(jobs, indent=2))
        return 0
    from repro.experiments.common import format_table

    rows = []
    for job in jobs:
        snapshot = job.get("progress") or {}
        progress = (
            f"{snapshot['completed']}/{snapshot['total']}"
            if "completed" in snapshot
            else "-"
        )
        rows.append(
            [
                job["job_id"],
                job["suite"],
                job["state"],
                progress,
                time.strftime(
                    "%H:%M:%S", time.localtime(job["created_at"])
                ),
            ]
        )
    _emit(
        args,
        f"{len(jobs)} job(s) at {args.url}\n"
        + format_table(
            ["job", "suite", "state", "progress", "created"], rows
        ),
    )
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    if args.records:
        payload = client.records(args.key)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(payload)
            print(f"wrote {args.out}")
        else:
            print(payload, end="")
        return 0
    _emit(args, json.dumps(client.result(args.key), indent=2))
    return 0


# -- campaign suites: `repro suite run|ls|show` ------------------------------


def _suite_progress(stream) -> Callable[[dict], None]:
    """Per-cell progress lines on ``stream`` (stderr, so ``--json`` on
    stdout stays machine-readable)."""

    def emit(event: dict) -> None:
        if event.get("event") != "done":
            return
        status = event.get("status", "?")
        wall = event.get("wall_time_s") or 0.0
        print(
            f"[{event['index'] + 1}/{event['total']}] "
            f"{event['cell']}: {status} ({wall * 1e3:.0f}ms)",
            file=stream,
        )

    return emit


def _cmd_suite_run(args: argparse.Namespace) -> int:
    from repro.suite import SuiteRunner, load_suite

    suite = load_suite(args.suite)
    progress = None if args.quiet else _suite_progress(sys.stderr)
    runner = SuiteRunner(
        store=args.store,
        cache=not args.no_cache,
        workers=args.workers,
        progress=progress,
    )
    report = runner.run(
        suite, only=args.only, engine=args.engine_override
    )
    if args.json:
        _emit(args, report.to_json(indent=2))
    else:
        _emit(args, report.render())
    return 1 if report.errors else 0


def _cmd_suite_ls(args: argparse.Namespace) -> int:
    from repro.suite import builtin_names, builtin_suite

    suites = [builtin_suite(name) for name in builtin_names()]
    if args.json:
        payload = [
            {
                "name": suite.name,
                "cells": len(suite.cells()),
                "families": list(suite.families()),
                "description": suite.description,
            }
            for suite in suites
        ]
        _emit(args, json.dumps(payload, indent=2))
        return 0
    from repro.experiments.common import format_table

    rows = [
        [
            suite.name,
            len(suite.cells()),
            ", ".join(suite.families()),
            suite.description,
        ]
        for suite in suites
    ]
    _emit(
        args,
        f"built-in campaign suites ({len(suites)})\n"
        + format_table(["suite", "cells", "families", "description"], rows),
    )
    return 0


def _cmd_suite_show(args: argparse.Namespace) -> int:
    from repro.suite import load_suite

    suite = load_suite(args.suite)
    cells = suite.cells()
    if args.json:
        payload = dict(suite.to_dict(), cells=[c.to_dict() for c in cells])
        _emit(args, json.dumps(payload, indent=2))
        return 0
    from repro.experiments.common import format_table

    rows = [
        [
            cell.cell_id,
            cell.family,
            (cell.scenarios or {}).get("population", "-"),
            cell.policy.get("engine", "packed"),
        ]
        for cell in cells
    ]
    _emit(
        args,
        f"suite {suite.name} — {len(cells)} cells\n"
        f"{suite.description}\n"
        + format_table(["cell", "family", "population", "engine"], rows),
    )
    return 0


# -- experiment regenerators (one table, not ten handlers) -------------------


@dataclass(frozen=True)
class ExperimentCommand:
    """One CLI subcommand regenerating a table/figure of the paper."""

    name: str
    module: str
    help: str
    #: name of a module-level ``generate_*`` returning dataclass rows,
    #: exposed as structured data under ``--json``; on engine-aware
    #: commands the generator takes (engine=, workers=) so the rows are
    #: produced by the engine the user selected
    rows_attr: Optional[str] = None
    #: campaign-driven commands grow --engine (plus the deprecated
    #: --packed/--serial aliases) and --workers and report wall time +
    #: faults/sec under --json
    engine_aware: bool = False

    def run(self, args: argparse.Namespace) -> int:
        module = importlib.import_module(self.module)
        kwargs = {}
        if self.engine_aware:
            _validate_engine_args(args)
            kwargs = {
                "engine": args.engine,
                "workers": args.workers,
                "store": args.store,
                "cache": not args.no_cache,
            }
        buffer = io.StringIO()
        start = time.perf_counter()
        with contextlib.redirect_stdout(buffer):
            module.main(**kwargs)
        wall = time.perf_counter() - start
        text = buffer.getvalue()
        if args.json:
            payload = {
                "command": self.name,
                "output": text,
                "wall_time_s": round(wall, 6),
            }
            if self.engine_aware:
                from repro.faultsim.vectorsim import resolve_engine

                # surface the engine that actually ran ("auto" resolves)
                payload["engine"] = resolve_engine(args.engine)
                payload["workers"] = args.workers
                stats = getattr(module, "LAST_CAMPAIGN_STATS", None)
                if stats:
                    payload["campaign"] = dict(stats)
            if self.rows_attr is not None:
                payload["rows"] = [
                    asdict(row)
                    for row in getattr(module, self.rows_attr)(**kwargs)
                ]
            _emit(args, json.dumps(payload, indent=2))
        else:
            _emit(args, text)
        return 0


EXPERIMENTS = (
    ExperimentCommand(
        "table1", "repro.experiments.table1", "regenerate Table 1",
        rows_attr="generate_table1",
    ),
    ExperimentCommand(
        "table2", "repro.experiments.table2", "regenerate Table 2",
        rows_attr="generate_table2",
    ),
    ExperimentCommand(
        "safety", "repro.experiments.safety_example",
        "regenerate the SII safety example",
    ),
    ExperimentCommand(
        "area-example", "repro.experiments.area_example",
        "regenerate the SIV example",
    ),
    ExperimentCommand(
        "structure", "repro.experiments.structure",
        "verify the figure-3 structure",
    ),
    ExperimentCommand(
        "latency", "repro.experiments.latency_empirical",
        "empirical latency validation",
        engine_aware=True,
    ),
    ExperimentCommand(
        "ablations", "repro.experiments.ablations",
        "odd-a and unordered-code ablations",
        engine_aware=True,
    ),
    ExperimentCommand(
        "ecc-baseline", "repro.experiments.ecc_baseline",
        "SEC-DED baseline comparison",
    ),
    ExperimentCommand(
        "decoder-style", "repro.experiments.decoder_style",
        "single-level vs multilevel decoder comparison",
        engine_aware=True,
    ),
    ExperimentCommand(
        "figures", "repro.experiments.figures",
        "ASCII trade-off and survival curves",
    ),
    ExperimentCommand(
        "transient", "repro.experiments.transient_campaign",
        "transient-upset latency across workload families",
        rows_attr="generate_transient_rows",
        engine_aware=True,
    ),
    ExperimentCommand(
        "march", "repro.experiments.march_campaign",
        "march-algorithm coverage over behavioural faults",
        rows_attr="generate_march_rows",
        engine_aware=True,
    ),
)


# -- parser ------------------------------------------------------------------


#: shown at the end of `repro --help`
EPILOG = """\
campaign suites (1.5):
  repro suite ls                         list the built-in suites
  repro suite show paper_grid            the expanded campaign matrix
  repro suite run paper_grid --store S   run the paper's full grid;
                                         re-running against the same
                                         store serves every cell as a
                                         verified hit (resume-by-default)
  repro suite run grid.json --workers 4  a custom SuiteSpec file over a
                                         bounded 4-process pool

campaign service (1.6):
  repro serve --store S --port 8032      long-running HTTP/JSON job
                                         service over the suite runner
                                         and the shared result store
  repro submit paper_grid --wait         submit a suite as an async job
                                         and stream [i/N] progress
  repro jobs [JOB_ID]                    the server's job table
  repro fetch KEY --records              a stored artifact's JSONL
  repro store stats|verify               occupancy counters / sha256
                                         sweep of every artifact

static analysis (1.8):
  repro lint 16x2K                       prove the TSC properties and
                                         design rules on a paper RAM
  repro lint paper_grid --strict         a suite spec: unknown names,
                                         colliding cells, provenance
  repro lint spec.json --json --out r.json
                                         stable JSON findings for CI
  repro lint --list-rules                every registered rule id

trend analytics (1.9):
  repro analytics regress                gate the BENCH_*.history.jsonl
                                         trajectories: exit 2 when a
                                         ratio metric (speedup,
                                         coverage) erodes past its
                                         tolerance vs the windowed
                                         baseline
  repro analytics regress --only scheme_64x8_c300 --window 3
                                         bisect one bench locally
  repro analytics report --store S --out report.html
                                         self-contained HTML: history
                                         sparklines + provenance-
                                         grouped store trends
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Area Versus Detection Latency Trade-Offs in "
            "Self-Checking Memory Design' (DATE 1995)."
        ),
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    select = sub.add_parser(
        "select", help="size an unordered code from (c, Pndc)"
    )
    select.add_argument("--cycles", "-c", type=int, required=True)
    select.add_argument("--pndc", "-p", type=float, required=True)
    _add_policy_option(select)
    _add_output_options(select)
    select.set_defaults(func=_cmd_select)

    report = sub.add_parser(
        "report", help="full design report for one memory + requirement"
    )
    report.add_argument("--words", type=int, required=True)
    report.add_argument("--bits", type=int, required=True)
    report.add_argument("--mux", type=int, default=8)
    report.add_argument("--cycles", "-c", type=int, required=True)
    report.add_argument("--pndc", "-p", type=float, required=True)
    _add_policy_option(report)
    report.add_argument(
        "--shared-column-code",
        action="store_true",
        help="use the row code on the column decoder (tables' convention) "
        "instead of a zero-latency column mapping",
    )
    report.add_argument(
        "--checker-style", choices=CHECKER_STYLES, default="behavioural"
    )
    report.add_argument("--decoder-style", default="tree")
    report.add_argument(
        "--empirical",
        action="store_true",
        help="attach a measured fault-injection summary (packed campaign "
        "on the row decoder)",
    )
    report.add_argument(
        "--empirical-cycles", type=int, default=256, metavar="CYCLES"
    )
    from repro.scenarios import NAMED_WORKLOADS

    report.add_argument(
        "--workload",
        choices=NAMED_WORKLOADS,
        default=None,
        help="traffic family driving the --empirical measurement "
        "(default: uniform; 'march' is one full March C- sweep and "
        "ignores --empirical-cycles)",
    )
    _add_engine_options(report)
    _add_store_options(report)
    _add_output_options(report)
    report.set_defaults(func=_cmd_report)

    sweep = sub.add_parser(
        "sweep",
        help="batch design reports over organisations x requirements",
    )
    sweep.add_argument(
        "--org",
        action="append",
        type=_parse_org,
        metavar="LABEL|WxBxM",
        help="memory organisation (repeatable); default: the three "
        "paper RAMs",
    )
    sweep.add_argument(
        "--cycles", "-c", action="append", type=int, required=True,
        help="latency budget in cycles (repeatable)",
    )
    sweep.add_argument(
        "--pndc", "-p", action="append", type=float, required=True,
        help="escape-probability target (repeatable)",
    )
    _add_policy_option(sweep)
    sweep.add_argument("--shared-column-code", action="store_true")
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="parallel evaluation workers (default: serial)",
    )
    sweep.add_argument(
        "--executor", choices=("thread", "process"), default="thread"
    )
    _add_store_options(sweep)
    _add_output_options(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    results = sub.add_parser(
        "results",
        help="inspect the content-addressed campaign result store",
    )
    results_sub = results.add_subparsers(
        dest="results_command", required=True
    )
    results_ls = results_sub.add_parser(
        "ls", help="list stored campaign result sets"
    )
    results_ls.set_defaults(func=_cmd_results_ls)
    results_show = results_sub.add_parser(
        "show", help="summary + provenance of one stored result set"
    )
    results_show.add_argument("key", help="store key (prefix accepted)")
    results_show.set_defaults(func=_cmd_results_show)
    results_diff = results_sub.add_parser(
        "diff",
        help="record-matched comparison of two stored result sets "
        "(exit code 2 when outcomes differ)",
    )
    results_diff.add_argument("left", help="store key (prefix accepted)")
    results_diff.add_argument("right", help="store key (prefix accepted)")
    results_diff.set_defaults(func=_cmd_results_diff)
    results_export = results_sub.add_parser(
        "export", help="write one stored result set as JSONL"
    )
    results_export.add_argument("key", help="store key (prefix accepted)")
    results_export.set_defaults(func=_cmd_results_export)
    for sub_parser in (
        results_ls, results_show, results_diff, results_export
    ):
        _add_store_options(sub_parser, required_default=True)
    for sub_parser in (results_ls, results_show, results_diff):
        _add_output_options(sub_parser)
    # export is inherently JSONL — only the output path applies
    results_export.add_argument(
        "--out", metavar="PATH", help="write the JSONL to a file"
    )

    suite = sub.add_parser(
        "suite",
        help="declarative campaign suites with store-backed resume",
    )
    suite_sub = suite.add_subparsers(dest="suite_command", required=True)
    suite_run = suite_sub.add_parser(
        "run",
        help="run a suite (built-in name or SuiteSpec JSON file); "
        "completed cells resume from the store",
    )
    suite_run.add_argument(
        "suite", help="built-in suite name (see `suite ls`) or spec file"
    )
    engine_group = suite_run.add_mutually_exclusive_group()
    engine_group.add_argument(
        "--engine",
        dest="engine_override",
        choices=ENGINE_CHOICES,
        default=None,
        help="override every cell's policy to this campaign engine",
    )
    _add_engine_aliases(engine_group, "engine_override")
    suite_run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="schedule cells over a bounded N-process pool",
    )
    from repro.suite.spec import FAMILIES

    suite_run.add_argument(
        "--only",
        choices=FAMILIES,
        default=None,
        help="run only the cells of one campaign family",
    )
    suite_run.add_argument(
        "--store",
        metavar="PATH",
        default=_default_store(),
        help="result store backing the suite (resume-by-default; "
        "defaults to $REPRO_STORE or .repro-store)",
    )
    suite_run.add_argument(
        "--no-cache",
        action="store_true",
        help="re-run every cell but still refresh the store entries",
    )
    suite_run.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-cell progress lines on stderr",
    )
    _add_output_options(suite_run)
    suite_run.set_defaults(func=_cmd_suite_run)
    suite_ls = suite_sub.add_parser(
        "ls", help="list the built-in suites"
    )
    _add_output_options(suite_ls)
    suite_ls.set_defaults(func=_cmd_suite_ls)
    suite_show = suite_sub.add_parser(
        "show", help="expand a suite into its concrete campaign cells"
    )
    suite_show.add_argument(
        "suite", help="built-in suite name or spec file"
    )
    _add_output_options(suite_show)
    suite_show.set_defaults(func=_cmd_suite_show)

    store = sub.add_parser(
        "store",
        help="result-store lifecycle: occupancy stats, artifact "
        "verification",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="entry counts and on-disk footprint"
    )
    store_stats.set_defaults(func=_cmd_store_stats)
    store_verify = store_sub.add_parser(
        "verify",
        help="sha256-verify every stored artifact (exit 2 on failure)",
    )
    store_verify.set_defaults(func=_cmd_store_verify)
    for sub_parser in (store_stats, store_verify):
        _add_store_options(sub_parser, required_default=True)
        _add_output_options(sub_parser)

    serve = sub.add_parser(
        "serve",
        help="run the campaign service: submit suites as async jobs "
        "over HTTP/JSON",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8032,
        help="listen port (0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--store",
        metavar="PATH",
        default=_default_store(),
        help="result store the service executes against (job table "
        "and artifacts live here; defaults to $REPRO_STORE or "
        ".repro-store)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="bounded job worker pool (default: 2)",
    )
    serve.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request log lines on stderr",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a suite to a running service as an async job",
    )
    submit.add_argument(
        "suite", help="built-in suite name or SuiteSpec JSON file"
    )
    _add_url_option(submit)
    submit.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="per-job cell pool on the server",
    )
    submit.add_argument(
        "--only",
        choices=FAMILIES,
        default=None,
        help="run only the cells of one campaign family",
    )
    submit_engine = submit.add_mutually_exclusive_group()
    submit_engine.add_argument(
        "--engine",
        dest="engine_override",
        choices=ENGINE_CHOICES,
        default=None,
        help="override every cell's policy to this campaign engine",
    )
    _add_engine_aliases(submit_engine, "engine_override")
    submit.add_argument(
        "--no-cache",
        action="store_true",
        help="re-run every cell but still refresh the store entries",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll the job to a terminal state, streaming [i/N] "
        "progress on stderr (exit 1 unless it ends 'done')",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="--wait deadline (default: 600)",
    )
    submit.add_argument(
        "--quiet", action="store_true",
        help="suppress the --wait progress lines",
    )
    _add_output_options(submit)
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list a running service's jobs (or show one)"
    )
    jobs.add_argument(
        "job_id", nargs="?", default=None, help="job id (omit to list)"
    )
    _add_url_option(jobs)
    _add_output_options(jobs)
    jobs.set_defaults(func=_cmd_jobs)

    fetch = sub.add_parser(
        "fetch",
        help="fetch a stored result from a running service by store key",
    )
    fetch.add_argument("key", help="store key (prefix accepted)")
    fetch.add_argument(
        "--records",
        action="store_true",
        help="the raw JSONL records instead of the metadata summary",
    )
    _add_url_option(fetch)
    _add_output_options(fetch)
    fetch.set_defaults(func=_cmd_fetch)

    analytics = sub.add_parser(
        "analytics",
        help="bench/store trend analytics and the CI regression gate",
    )
    analytics_sub = analytics.add_subparsers(
        dest="analytics_command", required=True
    )
    regress = analytics_sub.add_parser(
        "regress",
        help="flag metric erosion vs a windowed baseline "
        "(exit 2 on any hard regression)",
        description=(
            "Compare every bench history's last entry against a "
            "median-of-trailing-window baseline.  Ratio metrics "
            "(speedup, coverage) fail hard; raw wall seconds are "
            "warn-only annotations (shared runners are noisy).  "
            "Exit 0 clean, 2 on any hard regression — the `repro "
            "store verify` contract."
        ),
    )
    report_cmd = analytics_sub.add_parser(
        "report",
        help="combined JSON/HTML trend report over histories, a "
        "store, or a running service",
        description=(
            "Render the read side in one artifact: history "
            "sparklines, regression findings, and coverage/latency "
            "trends over store artifacts grouped by provenance "
            "(campaign family, workload label, engine policy).  "
            "--out writes the self-contained HTML page; --json the "
            "machine payload."
        ),
    )
    for sub_parser in (regress, report_cmd):
        sub_parser.add_argument(
            "--history",
            action="append",
            metavar="GLOB",
            help="history trajectory glob (repeatable; default "
            f"{DEFAULT_HISTORY_GLOB!r})",
        )
        sub_parser.add_argument(
            "--window",
            type=int,
            default=5,
            metavar="K",
            help="baseline = median of the K entries before the "
            "last (default 5)",
        )
        sub_parser.add_argument(
            "--tolerance",
            type=float,
            default=None,
            metavar="PCT",
            help="override every metric's tolerance band, percent "
            "(default: 25 for hard ratio metrics, 50 for warn-only "
            "wall metrics)",
        )
        _add_output_options(sub_parser)
    regress.add_argument(
        "--only",
        action="append",
        metavar="BENCH[,BENCH...]",
        help="gate only these benches (repeatable, comma-separable; "
        "unknown names fail fast)",
    )
    regress.add_argument(
        "--skip",
        action="append",
        metavar="BENCH[,BENCH...]",
        help="exclude these benches (repeatable, comma-separable)",
    )
    regress.add_argument(
        "--verbose",
        action="store_true",
        help="also list the series skipped for lack of a baseline",
    )
    regress.set_defaults(func=_cmd_analytics_regress)
    report_cmd.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="result store to trend over, grouped by provenance "
        "(optional)",
    )
    report_cmd.add_argument(
        "--url",
        metavar="URL",
        default=None,
        help="query a running `repro serve` for its artifacts "
        "instead of (or besides) a local store",
    )
    report_cmd.set_defaults(func=_cmd_analytics_report)

    registry = sub.add_parser(
        "registry", help="list pluggable codes/checkers/mappings/decoders"
    )
    _add_output_options(registry)
    registry.set_defaults(func=_cmd_registry)

    lint = sub.add_parser(
        "lint",
        help="static design linter & TSC property prover",
        description=(
            "Statically analyze a design or suite without simulating a "
            "cycle: netlist well-formedness, TSC checker proofs "
            "(code-disjoint / self-testing / fault-secure), collapse "
            "soundness, and suite-spec sanity.  Exit code 0 means no "
            "error findings (with --strict: no findings at all)."
        ),
    )
    lint.add_argument(
        "target",
        nargs="?",
        default=None,
        help="SuiteSpec or DesignSpec JSON file, built-in suite name, "
        "paper label ('16x2K') or WORDSxBITS[xMUX]",
    )
    lint.add_argument(
        "--cycles", "-c", type=int, default=10,
        help="latency budget for organisation targets (default 10)",
    )
    lint.add_argument(
        "--pndc", "-p", type=float, default=1e-9,
        help="escape-probability target for organisation targets "
        "(default 1e-9)",
    )
    lint.add_argument(
        "--rules",
        action="append",
        metavar="ID[,ID...]",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    lint.add_argument(
        "--skip",
        action="append",
        metavar="ID[,ID...]",
        help="exclude these rule ids (repeatable, comma-separable)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings and info findings too",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    _add_output_options(lint)
    lint.set_defaults(func=_cmd_lint)

    for entry in EXPERIMENTS:
        cmd = sub.add_parser(entry.name, help=entry.help)
        _add_output_options(cmd)
        if entry.engine_aware:
            _add_engine_options(cmd)
            _add_store_options(cmd)
        cmd.set_defaults(func=entry.run)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 1
    except Exception as exc:  # argparse exits are SystemExit, not caught
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
