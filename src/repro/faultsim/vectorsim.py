"""NumPy lane-array campaign engine (``engine="vector"``).

The packed engine (:mod:`repro.faultsim.fastsim`) bit-parallelises the
*cycle* axis into Python bigints but still runs one netlist traversal
per fault — per-fault Python dispatch is the measured ceiling on scheme
campaigns (~4x vs 58-90x on decoder benches).  This module packs the
**fault axis too**: every net carries a ``(faults, cycle_words)``
``uint64`` lane matrix, each gate is evaluated once for the whole
campaign as NumPy bitwise ops broadcast over the fault axis (golden row
+ per-fault forcing masks from the collapsed fault list), and the
packed checkers become array reductions — carry-save popcount for
m-out-of-n/Berger, XOR folds for parity/two-rail.  ``first_error`` /
``first_detection`` are recovered per fault with vectorized
trailing-bit arithmetic; there is no per-fault Python in the hot path.

Campaigns run in bounded-memory cycle windows (``chunk`` lanes wide,
:data:`DEFAULT_WINDOW` when unset): faults detected in an early window
drop out of later ones, mirroring the serial loop's per-fault ``break``,
and results are invariant in the window width (property-tested).  The
serial loops and the bigint packed engine remain the bit-identity
oracles; record-by-record equality across all three engines is part of
the test suite.

NumPy is an *optional* dependency (``pip install repro[vector]``): this
module imports without it, ``engine="vector"`` raises a one-line
actionable error when it is missing, and ``engine="auto"`` resolves to
``"vector"`` when NumPy is importable and falls back to ``"packed"``
otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:  # NumPy is the optional repro[vector] extra
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from repro.checkers.base import Checker
from repro.checkers.berger_checker import BergerChecker
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.checkers.parity_checker import ParityChecker
from repro.checkers.two_rail_checker import TwoRailChecker
from repro.circuits.faults import FaultBase, NetStuckAt
from repro.circuits.gates import GateType
from repro.core.scheme import SelfCheckingMemory
from repro.faultsim.fastsim import _fault_groups, _map_jobs
from repro.faultsim.results import CampaignResult, FaultRecord
from repro.rom.nor_matrix import CheckedDecoder

__all__ = [
    "CAMPAIGN_ENGINES",
    "DEFAULT_WINDOW",
    "numpy_available",
    "require_numpy",
    "resolve_engine",
    "decoder_campaign_vector",
    "scheme_campaign_vector",
]

#: engine policies accepted by the campaign layer (the circuit-level
#: drivers in :mod:`repro.circuits.simulator` stay packed/serial)
CAMPAIGN_ENGINES = ("packed", "serial", "vector", "auto")

#: default bounded-memory cycle-window width (lanes) for the vector
#: engine — per-net lane matrices stay (faults x DEFAULT_WINDOW/64)
#: words however long the stream is; results are invariant in the width
DEFAULT_WINDOW = 8192


def numpy_available() -> bool:
    """True iff the optional NumPy dependency is importable."""
    return np is not None


def require_numpy() -> None:
    """Raise the one-line actionable error when NumPy is missing."""
    if np is None:
        raise RuntimeError(
            "engine='vector' needs NumPy: pip install 'repro[vector]' "
            "(or keep engine='packed', the pure-Python fast path)"
        )


def resolve_engine(engine: str) -> str:
    """Validate a campaign engine policy and resolve ``"auto"``.

    ``"auto"`` becomes ``"vector"`` when NumPy is importable and falls
    back to ``"packed"`` otherwise; ``"vector"`` without NumPy raises
    immediately with the install hint.  Returns the resolved engine
    (one of ``"packed" | "serial" | "vector"``).
    """
    if engine not in CAMPAIGN_ENGINES:
        raise ValueError(
            f"engine must be one of {CAMPAIGN_ENGINES}, got {engine!r}"
        )
    if engine == "auto":
        return "vector" if numpy_available() else "packed"
    if engine == "vector":
        require_numpy()
    return engine


# -- lane packing helpers ----------------------------------------------------


def _lane_mask(num_lanes: int):
    """(W,) uint64 word array with the low ``num_lanes`` lane bits set."""
    words = (num_lanes + 63) // 64
    mask = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    rem = num_lanes % 64
    if rem:
        mask[-1] = np.uint64((1 << rem) - 1)
    return mask


def _pack_bool(bits):
    """Pack a (..., L) 0/1 array into (..., ceil(L/64)) uint64 lanes.

    Lane ``k`` of word ``j`` is element ``64*j + k`` — the
    :mod:`repro.circuits.parallel` lane convention, word-sliced.
    """
    length = bits.shape[-1]
    words = (length + 63) // 64
    pad = words * 64 - length
    bits = np.asarray(bits, dtype=np.uint8)
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    packed = np.packbits(bits, axis=-1, bitorder="little")
    return packed.view("<u8").astype(np.uint64)


def _unpack_lanes(row, num_lanes: int):
    """(W,) uint64 lane words -> (num_lanes,) bool (inverse of
    :func:`_pack_bool` for one row)."""
    bits = np.unpackbits(
        np.ascontiguousarray(row, dtype="<u8").view(np.uint8),
        bitorder="little",
    )
    return bits[:num_lanes].astype(bool)


def _row_to_int(row) -> int:
    """One (W,) uint64 lane row -> the equivalent Python bigint."""
    value = 0
    for j, word in enumerate(row.tolist()):
        value |= word << (64 * j)
    return value


def _int_to_row(value: int, words: int):
    """Python bigint -> (W,) uint64 lane row (inverse of _row_to_int)."""
    row = np.zeros(words, dtype=np.uint64)
    low = (1 << 64) - 1
    for j in range(words):
        row[j] = np.uint64((value >> (64 * j)) & low)
    return row


def _first_set_lanes(words):
    """Per-row index of the lowest set lane bit; -1 where all zero.

    The vectorized counterpart of
    :func:`repro.circuits.parallel.first_set_lane`: first nonzero word
    via ``argmax`` over the word axis, then trailing-zero count of the
    isolated lowest bit (``w & -w``).
    """
    nonzero = words != 0
    has = nonzero.any(axis=1)
    first_word = np.argmax(nonzero, axis=1)
    rows = np.arange(words.shape[0])
    picked = words[rows, first_word]
    isolated = picked & (~picked + np.uint64(1))
    if hasattr(np, "bitwise_count"):
        trailing = np.bitwise_count(isolated - np.uint64(1))
    else:  # pragma: no cover - NumPy < 2 fallback
        # isolated is 0 or a power of two: float64 log2 is exact
        trailing = np.log2(
            np.maximum(isolated, np.uint64(1)).astype(np.float64)
        )
    out = first_word.astype(np.int64) * 64 + trailing.astype(np.int64)
    out[~has] = -1
    return out


def _mask_through_lane(words, lanes):
    """Keep only lane bits <= ``lanes[f]`` per row (-1 keeps all).

    The vector form of the packed engine's
    ``err &= (1 << (first_detection + 1)) - 1`` — the serial loop breaks
    after detection, so later errors are never observed.
    """
    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    width = words.shape[1]
    word_of = lanes // 64
    bit_of = (lanes % 64).astype(np.uint64)
    index = np.arange(width)[None, :]
    partial = full >> (np.uint64(63) - bit_of)
    keep = np.where(
        index < word_of[:, None],
        full,
        np.where(index == word_of[:, None], partial[:, None], np.uint64(0)),
    )
    keep = np.where((lanes < 0)[:, None], full, keep)
    return words & keep


# -- vectorized circuit evaluation -------------------------------------------


class _VectorCircuit:
    """One circuit over a (faults x cycle-words) uint64 lane matrix.

    The golden (fault-free) pass runs once on (W,) rows; a fault pass
    broadcasts the golden row over the fault axis and applies per-fault
    forcing masks from ``fault.register`` — every gate is then evaluated
    once for the whole campaign with NumPy bitwise ops.  Per-lane gate
    semantics are identical to
    :func:`repro.circuits.parallel.packed_gate_word`.
    """

    def __init__(self, circuit, packed_inputs, lane_mask):
        self.circuit = circuit
        self.mask = lane_mask
        values = [None] * circuit.num_nets
        for net, word in zip(circuit.input_nets, packed_inputs):
            values[net] = word
        for gate in circuit.gates:
            values[gate.output] = self._gate_word(
                gate.gate_type, [values[src] for src in gate.inputs]
            )
        self.golden_values = values

    def _gate_word(self, gate_type, ins):
        mask = self.mask
        if gate_type is GateType.AND or gate_type is GateType.NAND:
            if ins:
                acc = ins[0]
                for word in ins[1:]:
                    acc = acc & word
            else:
                acc = mask
            if gate_type is GateType.NAND:
                acc = ~acc & mask
        elif gate_type is GateType.OR or gate_type is GateType.NOR:
            if ins:
                acc = ins[0]
                for word in ins[1:]:
                    acc = acc | word
            else:
                acc = np.zeros_like(mask)
            if gate_type is GateType.NOR:
                acc = ~acc & mask
        elif gate_type is GateType.XOR or gate_type is GateType.XNOR:
            if ins:
                acc = ins[0]
                for word in ins[1:]:
                    acc = acc ^ word
            else:
                acc = np.zeros_like(mask)
            if gate_type is GateType.XNOR:
                acc = ~acc & mask
        elif gate_type is GateType.NOT:
            acc = ~ins[0] & mask
        elif gate_type is GateType.BUF:
            acc = ins[0]
        elif gate_type is GateType.CONST0:
            acc = np.zeros_like(mask)
        else:  # CONST1
            acc = mask.copy()
        return acc

    def outputs_with_faults(self, reps: Sequence[FaultBase]) -> Dict:
        """net -> (F, W) lane matrix for every output net, all faults.

        Non-output nets are freed as soon as their last reader has
        consumed them, so peak memory tracks the live width of the
        circuit rather than its total net count.
        """
        circuit = self.circuit
        mask = self.mask
        count = len(reps)
        shape = (count,) + mask.shape

        net_ones: Dict[int, List[int]] = {}
        net_zeros: Dict[int, List[int]] = {}
        pin_ones: Dict[Tuple[int, int], List[int]] = {}
        pin_zeros: Dict[Tuple[int, int], List[int]] = {}
        for index, fault in enumerate(reps):
            nets: Dict[int, int] = {}
            pins: Dict[Tuple[int, int], int] = {}
            fault.register(nets, pins)
            for net, forced in nets.items():
                target = net_ones if forced else net_zeros
                target.setdefault(net, []).append(index)
            for key, forced in pins.items():
                target = pin_ones if forced else pin_zeros
                target.setdefault(key, []).append(index)

        refs = [0] * circuit.num_nets
        for gate in circuit.gates:
            for src in gate.inputs:
                refs[src] += 1
        keep = set(circuit.output_nets)

        def forced_copy(net, base):
            rows = np.array(np.broadcast_to(base, shape))
            if net in net_ones:
                rows[net_ones[net]] = mask
            if net in net_zeros:
                rows[net_zeros[net]] = np.uint64(0)
            return rows

        values: List = [None] * circuit.num_nets
        for net in circuit.input_nets:
            base = self.golden_values[net]
            if net in net_ones or net in net_zeros:
                values[net] = forced_copy(net, base)
            else:
                values[net] = np.broadcast_to(base, shape)

        for gate in circuit.gates:
            ins = []
            for pin, src in enumerate(gate.inputs):
                word = values[src]
                key = (gate.index, pin)
                if key in pin_ones or key in pin_zeros:
                    word = np.array(np.broadcast_to(word, shape))
                    if key in pin_ones:
                        word[pin_ones[key]] = mask
                    if key in pin_zeros:
                        word[pin_zeros[key]] = np.uint64(0)
                ins.append(word)
            acc = self._gate_word(gate.gate_type, ins)
            output = gate.output
            if output in net_ones or output in net_zeros:
                acc = forced_copy(output, acc)
            values[output] = acc
            for src in gate.inputs:
                refs[src] -= 1
                if refs[src] == 0 and src not in keep:
                    values[src] = None
        out = {}
        for net in circuit.output_nets:
            word = values[net]
            if word.shape != shape:
                word = np.broadcast_to(word, shape)
            out[net] = word
        return out


# -- vectorized packed checkers ----------------------------------------------


def _popcount_slices(columns, mask):
    """Carry-save lane popcount over (F, W) bit columns (LSB first).

    Array form of :func:`repro.circuits.parallel.popcount_lanes`: one
    ripple pass per input column, no unpacking.
    """
    slices: List = []
    for word in columns:
        carry = word & mask
        for i in range(len(slices)):
            if not carry.any():
                break
            slices[i], carry = slices[i] ^ carry, slices[i] & carry
        if carry.any():
            slices.append(carry)
    return slices


def _lanes_equal_const(slices, value, mask, shape):
    """Lanes whose bit-sliced count equals ``value`` (array form)."""
    if value < 0 or (value >> len(slices) if slices else value):
        return np.zeros(shape, dtype=np.uint64)
    acc = np.array(np.broadcast_to(mask, shape))
    for i, word in enumerate(slices):
        acc = acc & (word if (value >> i) & 1 else ~word & mask)
    return acc


def _accepts_lanes(checker: Checker, columns, mask, num_lanes: int):
    """(F, W) acceptance lanes of a checker over packed bit columns.

    The built-in checkers map to array reductions mirroring their
    ``accepts_packed`` bit tricks exactly; plugin checkers fall back to
    per-fault bigint conversion and defer to ``accepts_packed`` (the
    same escape hatch the packed engine uses for plugin codes).
    """
    shape = columns[0].shape
    if isinstance(checker, MOutOfNChecker):
        slices = _popcount_slices(columns, mask)
        return _lanes_equal_const(slices, checker.m, mask, shape)
    if isinstance(checker, ParityChecker):
        fold = np.zeros(shape, dtype=np.uint64)
        for word in columns:
            fold = fold ^ word
        fold = fold & mask
        return ~fold & mask if checker.even else fold
    if isinstance(checker, BergerChecker):
        info = columns[: checker.code.info_bits]
        check = columns[checker.code.info_bits :]
        zeros = _popcount_slices([~word & mask for word in info], mask)
        width = len(check)
        acc = np.array(np.broadcast_to(mask, shape))
        for j in range(width):
            if j < len(zeros):
                counted = zeros[j]
            else:
                counted = np.zeros(shape, dtype=np.uint64)
            stored = check[width - 1 - j]  # check field is MSB-first
            acc = acc & (~(counted ^ stored) & mask)
        return acc
    if isinstance(checker, TwoRailChecker):
        acc = np.array(np.broadcast_to(mask, shape))
        for i in range(checker.pairs):
            acc = acc & (columns[2 * i] ^ columns[2 * i + 1])
        return acc & mask
    out = np.zeros(shape, dtype=np.uint64)
    words = shape[-1]
    for row in range(shape[0]):
        packed_word = [_row_to_int(column[row]) for column in columns]
        out[row] = _int_to_row(
            checker.accepts_packed(packed_word, num_lanes), words
        )
    return out


# -- decoder campaigns -------------------------------------------------------


def _pack_values(values, n_bits: int):
    """Pack an int stream into one (W,) lane row per LSB-first bit."""
    bits = (values[None, :] >> np.arange(n_bits)[:, None]) & 1
    return _pack_bool(bits)


def _decoder_window(
    checked: CheckedDecoder, checker: Checker, window, reps
):
    """(first_error, first_detection) int64 arrays for one lane window.

    One vectorized traversal for every representative fault at once:
    ``err`` ORs the per-line mismatch against the ideal one-hot words,
    ``acc`` is the vector checker over the ROM columns, and the error
    word is truncated at the first detection exactly as the packed and
    serial engines do.
    """
    lanes = len(window)
    mask = _lane_mask(lanes)
    addresses = np.asarray(window, dtype=np.int64)
    sim = _VectorCircuit(
        checked.circuit, _pack_values(addresses, checked.n), mask
    )
    num_lines = 1 << checked.n
    outputs = checked.circuit.output_nets
    line_nets = outputs[:num_lines]
    rom_nets = outputs[num_lines:]
    values = sim.outputs_with_faults(reps)

    one_hot = addresses[None, :] == np.arange(num_lines)[:, None]
    golden_lines = _pack_bool(one_hot)
    err = np.zeros((len(reps),) + mask.shape, dtype=np.uint64)
    for index, net in enumerate(line_nets):
        err |= values[net] ^ golden_lines[index][None, :]

    acc = _accepts_lanes(
        checker, [values[net] for net in rom_nets], mask, lanes
    )
    detection = _first_set_lanes(~acc & mask)
    err = _mask_through_lane(err, detection)
    return _first_set_lanes(err), detection


def _vector_decoder_worker(payload):
    """Windowed (first_error, first_detection) per representative fault.

    Mirrors :func:`repro.faultsim.fastsim._decoder_worker` — faults
    whose detection lands in an early window drop out of later ones —
    but evaluates every surviving fault of a window in one vectorized
    pass.  ``chunk=None`` uses :data:`DEFAULT_WINDOW`, so memory stays
    bounded however long the stream is.
    """
    (checked, checker, addresses, chunk), reps = payload
    require_numpy()
    step = DEFAULT_WINDOW if chunk is None else chunk
    outcomes: List[List[Optional[int]]] = [[None, None] for _ in reps]
    active = list(range(len(reps)))
    offset = 0
    for start in range(0, len(addresses), step):
        window = addresses[start : start + step]
        errs, dets = _decoder_window(
            checked, checker, window, [reps[i] for i in active]
        )
        survivors = []
        for pos, index in enumerate(active):
            err, det = int(errs[pos]), int(dets[pos])
            if outcomes[index][0] is None and err >= 0:
                outcomes[index][0] = offset + err
            if det >= 0:
                outcomes[index][1] = offset + det
            else:
                survivors.append(index)
        active = survivors
        offset += len(window)
        if not active:
            break
    return [tuple(outcome) for outcome in outcomes]


def decoder_campaign_vector(
    checked: CheckedDecoder,
    checker: Checker,
    faults: Sequence[FaultBase],
    addresses: Sequence[int],
    attach_analytic: bool = True,
    collapse: bool = True,
    workers: Optional[int] = None,
    chunk: Optional[int] = None,
) -> CampaignResult:
    """Vector counterpart of :func:`repro.faultsim.campaign.decoder_campaign`.

    Bit-identical records to the packed and serial engines; the whole
    collapsed fault list is evaluated per cycle window in one NumPy
    traversal.  ``workers=N`` shards representatives over a process
    pool; ``chunk=W`` sets the bounded-memory window width
    (:data:`DEFAULT_WINDOW` when unset; results invariant in W).
    """
    from repro.faultsim.campaign import (
        analytic_escapes,
        classify_structural_fault,
    )

    require_numpy()
    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk must be >= 1 lanes, got {chunk}")

    analytic = analytic_escapes(checked) if attach_analytic else None

    faults = list(faults)
    reps, key_to_group = _fault_groups(checked.circuit, faults, collapse)
    outcomes = _map_jobs(
        _vector_decoder_worker,
        (checked, checker, list(addresses), chunk),
        reps,
        workers,
    )

    result = CampaignResult(
        cycles_simulated=len(addresses), engine="vector"
    )
    for fault in faults:
        first_error, first_detection = outcomes[key_to_group[fault.key()]]
        escape = None
        if analytic is not None and isinstance(fault, NetStuckAt):
            escape = analytic.get(fault.key())
        result.add(
            FaultRecord(
                fault=fault,
                kind=classify_structural_fault(checked, fault),
                first_detection=first_detection,
                first_error=first_error,
                analytic_escape=escape,
            )
        )
    return result


# -- scheme campaigns --------------------------------------------------------


class _VectorSchemeState:
    """Shared golden context for one vectorized scheme campaign.

    Structural axis faults never touch the behavioural model: each
    window packs both decoders' golden passes once (each axis's golden
    doubles as the other axis's fault-free reference) and the raw array
    contents feed the vectorized data path.  Only behavioural memory
    faults read through the scheme, memoised per distinct address with
    the packed engine's early exit.
    """

    def __init__(
        self,
        memory: SelfCheckingMemory,
        addresses: Sequence[int],
        chunk: Optional[int],
    ):
        require_numpy()
        self.memory = memory
        self.addresses = list(addresses)
        self.chunk = DEFAULT_WINDOW if chunk is None else chunk
        org = memory.organization
        self.org = org
        stream = np.asarray(self.addresses, dtype=np.int64)
        self.addr_stream = stream
        self.row_stream = stream >> org.s
        self.col_stream = stream & (org.column_mux - 1)
        self._stored = None
        self._stored_zero = None
        self._axis_rejects = None
        self._joined: Dict[str, "np.ndarray"] = {}

    def stored(self):
        """(words, word_width) uint8 snapshot of the raw array contents.

        Contents are static for the whole campaign (reads are pure and
        the writer fills once), so the data path is a pure function of
        the selected lines and this table.
        """
        if self._stored is None:
            ram = self.memory.ram
            self._stored = np.array(
                [ram.raw_word(a) for a in range(self.org.words)],
                dtype=np.uint8,
            )
        return self._stored

    def stored_zero(self):
        """Boolean zero-cell table: ``stored() == 0``, cached."""
        if self._stored_zero is None:
            self._stored_zero = self.stored() == 0
        return self._stored_zero

    # -- behavioural memory faults ------------------------------------------

    def _golden_axis_rejects(self):
        """(row, column) golden checker rejection, one bool per axis
        value.

        A behavioural memory fault leaves both decoders fault-free, so
        their checker verdict per cycle is a pure function of the axis
        value — one tiny vector pass over every axis value replaces the
        behavioural read path.  Non-trivial only for exotic plugin
        codes, but kept exact so vector == packed == serial.
        """
        if self._axis_rejects is None:
            memory = self.memory
            luts = []
            for checked, checker in (
                (memory.row, memory.row_checker),
                (memory.column, memory.column_checker),
            ):
                count = 1 << checked.n
                mask = _lane_mask(count)
                sim = _VectorCircuit(
                    checked.circuit,
                    _pack_values(
                        np.arange(count, dtype=np.int64), checked.n
                    ),
                    mask,
                )
                rom = [
                    sim.golden_values[net][None, :]
                    for net in checked.circuit.output_nets[count:]
                ]
                acc = _accepts_lanes(checker, rom, mask, count)
                luts.append(_unpack_lanes((~acc & mask)[0], count))
            self._axis_rejects = tuple(luts)
        return self._axis_rejects

    def memory_fault_firsts(self, faults) -> List[Optional[int]]:
        """First detection per behavioural fault, all faults batched.

        Selection is fault-free and contents static, so a read of
        address ``a`` resolves to the faulted raw word at ``a`` behind
        golden decoders: the verdict is ``golden axis reject | parity
        reject of that word``, a pure function of the address.  Raw
        words are read once per distinct streamed address (in stream
        order, exactly the packed engine's memoisation), every fault's
        word table is judged as one address-indexed lane batch, and the
        verdict tables are gathered over the cycle stream in a single
        lookup each.
        """
        faults = list(faults)
        if not faults:
            return []
        memory = self.memory
        org = self.org
        ram = memory.ram
        width = ram.word_width
        row_rej, col_rej = self._golden_axis_rejects()
        distinct = list(dict.fromkeys(self.addresses))
        data = np.zeros((len(faults), org.words, width), dtype=bool)
        for idx, fault in enumerate(faults):
            memory.clear_faults()
            memory.inject_memory_fault(fault)
            data[idx, distinct] = [ram.read(a) for a in distinct]
        memory.clear_faults()

        mask = _lane_mask(org.words)
        columns = [_pack_bool(data[:, :, b]) for b in range(width)]
        acc = _accepts_lanes(
            memory.parity_checker, columns, mask, org.words
        )
        axis_rej = row_rej[self.row_stream] | col_rej[self.col_stream]
        firsts: List[Optional[int]] = []
        for idx in range(len(faults)):
            parity_rej = ~_unpack_lanes(acc[idx] & mask, org.words)
            rejected = parity_rej[self.addr_stream] | axis_rej
            firsts.append(
                int(rejected.argmax()) if rejected.any() else None
            )
        return firsts

    # -- structural axis faults ----------------------------------------------

    def axis_batches(
        self,
        row_reps: Sequence[FaultBase],
        col_reps: Sequence[FaultBase],
    ) -> Tuple[List[Optional[int]], List[Optional[int]]]:
        """First-detection cycle per representative fault, both axes.

        Window-major with survivor compaction: each cycle window packs
        both decoders' golden passes exactly once (an axis's golden run
        doubles as the other axis's fault-free reference), and a fault
        detected in an early window never reaches later ones (the
        serial loop's ``break``).
        """
        memory = self.memory
        reps = {"row": list(row_reps), "column": list(col_reps)}
        outcomes: Dict[str, List[Optional[int]]] = {
            axis: [None] * len(reps[axis]) for axis in ("row", "column")
        }
        active = {
            axis: list(range(len(reps[axis])))
            for axis in ("row", "column")
        }
        offset = 0
        total = len(self.addresses)
        for start in range(0, total, self.chunk):
            if not active["row"] and not active["column"]:
                break
            stop = min(start + self.chunk, total)
            lanes = stop - start
            mask = _lane_mask(lanes)
            sims = {
                "row": _VectorCircuit(
                    memory.row.circuit,
                    _pack_values(
                        self.row_stream[start:stop], memory.row.n
                    ),
                    mask,
                ),
                "column": _VectorCircuit(
                    memory.column.circuit,
                    _pack_values(
                        self.col_stream[start:stop], memory.column.n
                    ),
                    mask,
                ),
            }
            for axis in ("row", "column"):
                if not active[axis]:
                    continue
                other = "column" if axis == "row" else "row"
                detection = self._axis_window(
                    axis,
                    [reps[axis][i] for i in active[axis]],
                    sims[axis],
                    sims[other],
                    mask,
                    lanes,
                )
                firsts = _first_set_lanes(detection)
                survivors = []
                for pos, index in enumerate(active[axis]):
                    first = int(firsts[pos])
                    if first >= 0:
                        outcomes[axis][index] = offset + first
                    else:
                        survivors.append(index)
                active[axis] = survivors
            offset += stop - start
        return outcomes["row"], outcomes["column"]

    def _axis_window(self, axis, reps, sim, other_sim, mask, lanes):
        """(F, W) detection lanes of one window, all faults at once.

        ``detection = axis-checker reject | other-axis fault-free
        reject | parity reject``.  The other-axis verdict is its own
        checker over its golden code output (no behavioural read), and
        the parity path is computed exactly for every lane: per stored
        bit, a lane violates iff some active faulted-axis line combines
        with an active fault-free other-axis line whose cell stores 0
        (bit lines are precharged high, reads AND) — so multi-hot and
        empty selections resolve without the behavioural model.
        """
        memory = self.memory
        org = self.org
        row_axis = axis == "row"
        checked = memory.row if row_axis else memory.column
        checker = memory.row_checker if row_axis else memory.column_checker
        other = memory.column if row_axis else memory.row
        other_checker = (
            memory.column_checker if row_axis else memory.row_checker
        )

        num_lines = 1 << checked.n
        outputs = checked.circuit.output_nets
        line_nets = outputs[:num_lines]
        rom_nets = outputs[num_lines:]
        values = sim.outputs_with_faults(reps)
        acc = _accepts_lanes(
            checker, [values[net] for net in rom_nets], mask, lanes
        )
        detection = ~acc & mask

        # other-axis fault-free rejection: its golden code output fails
        # its own checker (non-trivial only for exotic writers/codes,
        # but kept exact so vector == packed == serial under *any*
        # memory preparation)
        other_outputs = other.circuit.output_nets
        other_rom = [
            other_sim.golden_values[net][None, :]
            for net in other_outputs[1 << other.n :]
        ]
        other_acc = _accepts_lanes(other_checker, other_rom, mask, lanes)
        detection = detection | (~other_acc & mask)

        # fault-free other-axis line activity (golden vector pass)
        other_lines = [
            other_sim.golden_values[net]
            for net in other_outputs[: 1 << other.n]
        ]

        # zero-cell masks: zmask[j, b] = lanes whose active other-axis
        # line, joined with faulted-axis line j, addresses a stored 0
        joined = self._joined.get(axis)
        if joined is None:
            # the organization's layout (split/join_address):
            # address = (row << s) | column
            lines = np.arange(num_lines, dtype=np.int64)
            others = np.arange(len(other_lines), dtype=np.int64)
            if row_axis:
                joined = (lines[:, None] << org.s) | others[None, :]
            else:
                joined = (others[None, :] << org.s) | lines[:, None]
            self._joined[axis] = joined
        zero = self.stored_zero()[joined]  # (J, O, width)
        other_arr = np.stack(other_lines)  # (O, W)
        width = memory.ram.word_width
        words = mask.shape[0]
        zmask = np.bitwise_or.reduce(
            np.where(
                zero[..., None],
                other_arr[None, :, None, :],
                np.uint64(0),
            ),
            axis=1,
        )  # (J, width, W)

        count = len(reps)
        violation = np.zeros((count, width, words), dtype=np.uint64)
        for j, net in enumerate(line_nets):
            violation |= values[net][:, None, :] & zmask[j][None, :, :]
        data_columns = [
            ~violation[:, b, :] & mask for b in range(width)
        ]
        parity_acc = _accepts_lanes(
            memory.parity_checker, data_columns, mask, lanes
        )
        detection |= ~parity_acc & mask
        return detection


def _vector_scheme_worker(payload):
    """Detection outcomes for one chunk of (axis, fault) jobs.

    Jobs of the same axis are batched into one fault-parallel
    evaluation; behavioural memory faults use the memoised pure-read
    path.  Output order matches the job order (the packed worker's
    contract)."""
    (memory, addresses, chunk), jobs = payload
    state = _VectorSchemeState(memory, addresses, chunk)
    out: List[Optional[int]] = [None] * len(jobs)
    row_idx = [i for i, (a, _) in enumerate(jobs) if a == "row"]
    col_idx = [i for i, (a, _) in enumerate(jobs) if a == "column"]
    if row_idx or col_idx:
        row_first, col_first = state.axis_batches(
            [jobs[i][1] for i in row_idx],
            [jobs[i][1] for i in col_idx],
        )
        for i, first in zip(row_idx, row_first):
            out[i] = first
        for i, first in zip(col_idx, col_first):
            out[i] = first
    mem_idx = [i for i, (a, _) in enumerate(jobs) if a == "memory"]
    if mem_idx:
        firsts = state.memory_fault_firsts(
            [jobs[i][1] for i in mem_idx]
        )
        for i, first in zip(mem_idx, firsts):
            out[i] = first
    return out


def scheme_campaign_vector(
    memory: SelfCheckingMemory,
    addresses: Sequence[int],
    row_faults: Sequence[FaultBase] = (),
    column_faults: Sequence[FaultBase] = (),
    memory_faults: Sequence = (),
    writer=None,
    collapse: bool = True,
    workers: Optional[int] = None,
    chunk: Optional[int] = None,
) -> CampaignResult:
    """Vector counterpart of :func:`repro.faultsim.campaign.scheme_campaign`.

    Structural row/column faults are collapsed per axis and evaluated
    *together* — one vectorized traversal per cycle window for the whole
    fault list, with the parity data path resolved as array ops over
    the static array contents instead of per-fault behavioural reads.
    Bit-identical to the packed and serial engines.
    """
    from repro.faultsim.campaign import (
        classify_structural_fault,
        default_scheme_writer,
    )

    require_numpy()
    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk must be >= 1 lanes, got {chunk}")

    fill = writer or default_scheme_writer
    fill(memory)

    row_faults = list(row_faults)
    column_faults = list(column_faults)
    memory_faults = list(memory_faults)
    row_reps, row_groups = _fault_groups(
        memory.row.circuit, row_faults, collapse
    )
    col_reps, col_groups = _fault_groups(
        memory.column.circuit, column_faults, collapse
    )

    jobs = (
        [("row", f) for f in row_reps]
        + [("column", f) for f in col_reps]
        + [("memory", f) for f in memory_faults]
    )
    memory.clear_faults()
    outcomes = _map_jobs(
        _vector_scheme_worker,
        (memory, list(addresses), chunk),
        jobs,
        workers,
    )
    row_out = outcomes[: len(row_reps)]
    col_out = outcomes[len(row_reps) : len(row_reps) + len(col_reps)]
    mem_out = outcomes[len(row_reps) + len(col_reps) :]

    result = CampaignResult(
        cycles_simulated=len(addresses), engine="vector"
    )
    for fault in row_faults:
        result.add(
            FaultRecord(
                fault=fault,
                kind=classify_structural_fault(memory.row, fault),
                first_detection=row_out[row_groups[fault.key()]],
            )
        )
    for fault in column_faults:
        result.add(
            FaultRecord(
                fault=fault,
                kind=classify_structural_fault(memory.column, fault),
                first_detection=col_out[col_groups[fault.key()]],
            )
        )
    for fault, first in zip(memory_faults, mem_out):
        result.add(
            FaultRecord(fault=fault, kind="memory", first_detection=first)
        )
    return result
