"""Packed fault-injection campaign engine (PPSFP-style fast path).

The serial drivers in :mod:`repro.faultsim.campaign` evaluate the
circuit once per (fault, cycle).  This module is the engine every
campaign consumer now routes through: per fault it runs **one**
bit-parallel netlist traversal over the entire address stream
(:func:`repro.circuits.parallel.evaluate_packed`, lane ``k`` = cycle
``k``) and recovers the campaign observables with bit tricks —

* ``first_error`` — OR-fold of lane-wise mismatch words against the
  golden selected-line words; first set bit
  (``(diff & -diff).bit_length() - 1``) = first corrupt-data cycle;
* ``first_detection`` — packed checker acceptance
  (:meth:`repro.checkers.base.Checker.accepts_packed`: carry-save
  popcount for m-out-of-n/Berger weight, XOR-fold for parity/two-rail);
  first zero bit = first cycle the observer flags a non-code word.

Layered on top of the packed traversals:

* structural fault collapsing (:mod:`repro.circuits.equivalence`) is
  applied by default: one representative per equivalence class is
  simulated and the measured outcome is fanned back out to every class
  member — lossless, because classes are equivalent at the primary
  outputs, which is all a campaign observes;
* golden responses (one-hot line words, fault-free indication flags)
  are computed once per campaign and shared across the fault loop;
* ``workers=N`` shards the fault list over a
  :class:`concurrent.futures.ProcessPoolExecutor` (the
  ``DesignEngine.sweep`` executor pattern; opt-in, serial by default).

The serial paths remain in :mod:`repro.faultsim.campaign` as the
reference oracle; the test suite proves record-by-record bit-identity
for net, pin, ROM and memory faults, and ``benchmarks/run_campaigns.py``
tracks the measured speedup in ``BENCH_campaigns.json``.

Scheme campaigns (:func:`scheme_campaign_packed`) pack the structural
axis under test and fall back to address-memoised behavioural reads only
on the lanes whose word-line selection is wrong *before* the first
already-known detection — reads are pure, so per-address memoisation is
exact.
"""

from __future__ import annotations

from concurrent import futures
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checkers.base import Checker
from repro.circuits.equivalence import collapse_faults
from repro.circuits.faults import FaultBase, NetStuckAt, PinStuckAt
from repro.circuits.parallel import (
    first_set_lane,
    pack_addresses,
    packed_gate_word,
)
from repro.core.scheme import SelfCheckingMemory
from repro.faultsim.results import CampaignResult, FaultRecord
from repro.rom.nor_matrix import CheckedDecoder

__all__ = [
    "PackedStream",
    "decoder_campaign_packed",
    "scheme_campaign_packed",
]


class _PackedCircuit:
    """Incremental single-fault packed evaluator over one stimulus set.

    The golden (fault-free) lane-word of **every** net is computed once;
    a fault evaluation then copies that table and re-evaluates only the
    gates downstream of the fault site (index-ordered worklist over a
    precomputed fanout graph — insertion order is topological, so a
    min-heap of gate indices visits each affected gate exactly once).
    For the paper's decoder trees the average cone is a small fraction
    of the circuit, which is where most of the packed engine's speedup
    over :func:`evaluate_packed`-per-fault comes from.
    """

    def __init__(self, circuit, packed_inputs: Sequence[int], num_lanes: int):
        self.circuit = circuit
        self.num_lanes = num_lanes
        self.mask = (1 << num_lanes) - 1
        self.readers: List[List[int]] = [[] for _ in range(circuit.num_nets)]
        for gate in circuit.gates:
            for src in set(gate.inputs):
                self.readers[src].append(gate.index)
        # lane-exact golden pass (same algebra as evaluate_packed)
        values = [0] * circuit.num_nets
        for net, word in zip(circuit.input_nets, packed_inputs):
            values[net] = word
        for gate in circuit.gates:
            values[gate.output] = self._gate_word(gate, values)
        self.golden_values = values

    def _gate_word(self, gate, values, pin_forced=None) -> int:
        """One gate's packed output word (identical per-lane semantics
        to :meth:`repro.circuits.netlist.Circuit.evaluate`)."""
        if pin_forced is None:
            ins = [values[src] for src in gate.inputs]
        else:
            ins = [
                pin_forced[pin] if pin in pin_forced else values[src]
                for pin, src in enumerate(gate.inputs)
            ]
        return packed_gate_word(gate.gate_type, ins, self.mask)

    def values_with_fault(self, fault: FaultBase) -> List[int]:
        """All net lane-words under one fault (cone re-evaluation)."""
        mask = self.mask
        values = self.golden_values[:]
        net_faults: Dict[int, int] = {}
        pin_faults: Dict[Tuple[int, int], int] = {}
        fault.register(net_faults, pin_faults)

        heap: List[int] = []
        queued = set()
        for net, forced in net_faults.items():
            word = mask if forced else 0
            if values[net] != word:
                values[net] = word
                for reader in self.readers[net]:
                    if reader not in queued:
                        queued.add(reader)
                        heappush(heap, reader)
        forced_by_gate: Dict[int, Dict[int, int]] = {}
        for (gate_index, pin), forced in pin_faults.items():
            forced_by_gate.setdefault(gate_index, {})[pin] = (
                mask if forced else 0
            )
            if gate_index not in queued:
                queued.add(gate_index)
                heappush(heap, gate_index)

        gates = self.circuit.gates
        readers = self.readers
        while heap:
            gate = gates[heappop(heap)]
            output = gate.output
            if output in net_faults:
                continue  # output stays forced regardless of inputs
            word = self._gate_word(
                gate, values, forced_by_gate.get(gate.index)
            )
            if word != values[output]:
                values[output] = word
                for reader in readers[output]:
                    if reader not in queued:
                        queued.add(reader)
                        heappush(heap, reader)
        return values


class PackedStream:
    """One address stream packed for a checked decoder, golden included.

    ``golden_line_words[L]`` has bit ``k`` set iff the stream selects
    line ``L`` at cycle ``k`` — the packed form of the serial campaign's
    per-cycle ``one_hot[address]`` compare; ``sim`` carries the golden
    lane-word of every net for incremental fault evaluation.
    """

    def __init__(self, checked: CheckedDecoder, addresses: Sequence[int]):
        self.addresses = list(addresses)
        self.num_lanes = len(self.addresses)
        self.mask = (1 << self.num_lanes) - 1
        self.num_lines = 1 << checked.n
        self.packed_inputs, _ = pack_addresses(self.addresses, checked.n)
        golden = [0] * self.num_lines
        for lane, address in enumerate(self.addresses):
            golden[address] |= 1 << lane
        self.golden_line_words = golden
        outputs = checked.circuit.output_nets
        self.line_nets = outputs[: self.num_lines]
        self.rom_nets = outputs[self.num_lines :]
        self.sim = _PackedCircuit(
            checked.circuit, self.packed_inputs, self.num_lanes
        )

    def observe_fault(
        self, fault: FaultBase, checker: Checker
    ) -> Tuple[int, int]:
        """(err_word, acc_word) under one fault — the packed campaign
        observables: lanes with a wrong selected-line vector, and lanes
        whose ROM word the checker accepts."""
        values = self.sim.values_with_fault(fault)
        err = 0
        for net, golden in zip(self.line_nets, self.golden_line_words):
            err |= values[net] ^ golden
        acc = checker.accepts_packed(
            [values[net] for net in self.rom_nets], self.num_lanes
        )
        return err, acc


def _decoder_fault_outcome(
    checker: Checker,
    stream: PackedStream,
    fault: FaultBase,
) -> Tuple[Optional[int], Optional[int]]:
    """(first_error, first_detection) from one packed cone traversal."""
    err, acc = stream.observe_fault(fault, checker)
    first_detection = first_set_lane(~acc & stream.mask)
    if first_detection is not None:
        # the serial loop breaks after detection: errors first showing
        # up on later cycles are never observed
        err &= (1 << (first_detection + 1)) - 1
    return first_set_lane(err), first_detection


# -- fault collapsing --------------------------------------------------------


def _fault_groups(
    circuit, faults: Sequence[FaultBase], collapse: bool
) -> Tuple[List[FaultBase], Dict[Tuple, int]]:
    """(representatives, fault key -> representative index).

    With ``collapse`` the stuck-at faults are partitioned into
    structural equivalence classes and only the class representative is
    simulated; faults the collapser does not model (custom
    :class:`FaultBase` subclasses) become singleton groups.
    """
    reps: List[FaultBase] = []
    key_to_group: Dict[Tuple, int] = {}
    if collapse and len(faults) > 1:
        known = [
            f for f in faults if isinstance(f, (NetStuckAt, PinStuckAt))
        ]
        if known:
            for cls in collapse_faults(circuit, known).classes:
                gid = len(reps)
                reps.append(cls[0])
                for member in cls:
                    key_to_group[member.key()] = gid
    for fault in faults:
        if fault.key() not in key_to_group:
            key_to_group[fault.key()] = len(reps)
            reps.append(fault)
    return reps, key_to_group


# -- process-pool sharding ---------------------------------------------------


def _chunk(items: List, parts: int) -> List[List]:
    parts = min(parts, len(items))
    size, extra = divmod(len(items), parts)
    chunks, start = [], 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def _map_jobs(worker, context, jobs: List, workers: Optional[int]) -> List:
    """``worker((context, chunk))`` over chunks of ``jobs``, in order.

    In-process by default; ``workers=N`` fans contiguous chunks out over
    a process pool (one pickled context per worker, mirroring the
    ``DesignEngine.sweep`` executor pattern).
    """
    if not jobs:
        return []
    if workers is None or workers <= 1 or len(jobs) == 1:
        return worker((context, jobs))
    chunks = _chunk(jobs, workers)
    with futures.ProcessPoolExecutor(max_workers=len(chunks)) as pool:
        parts = pool.map(
            worker, [(context, chunk) for chunk in chunks]
        )
        out: List = []
        for part in parts:
            out.extend(part)
    return out


def _decoder_worker(payload):
    """(first_error, first_detection) per representative fault.

    ``chunk=None`` packs the whole stream into one lane set;
    ``chunk=W`` processes W-lane windows in stream order — the
    bounded-memory path (per-net lane words stay W bits wide however
    long the stream is).  Faults whose detection lands in an early
    window drop out of later ones, exactly mirroring the serial loop's
    per-fault ``break``; results are bit-identical for every W (the
    chunked-lane invariance property test pins this).
    """
    (checked, checker, addresses, chunk), reps = payload
    if chunk is None or chunk >= len(addresses):
        stream = PackedStream(checked, addresses)
        return [
            _decoder_fault_outcome(checker, stream, fault) for fault in reps
        ]
    outcomes: List[List[Optional[int]]] = [[None, None] for _ in reps]
    active = list(range(len(reps)))
    offset = 0
    for start in range(0, len(addresses), chunk):
        window = addresses[start : start + chunk]
        stream = PackedStream(checked, window)
        survivors = []
        for index in active:
            err, det = _decoder_fault_outcome(checker, stream, reps[index])
            if outcomes[index][0] is None and err is not None:
                outcomes[index][0] = offset + err
            if det is not None:
                outcomes[index][1] = offset + det
            else:
                survivors.append(index)
        active = survivors
        offset += len(window)
        if not active:
            break
    return [tuple(outcome) for outcome in outcomes]


# -- decoder campaigns -------------------------------------------------------


def decoder_campaign_packed(
    checked: CheckedDecoder,
    checker: Checker,
    faults: Sequence[FaultBase],
    addresses: Sequence[int],
    attach_analytic: bool = True,
    collapse: bool = True,
    workers: Optional[int] = None,
    chunk: Optional[int] = None,
) -> CampaignResult:
    """Packed counterpart of :func:`repro.faultsim.campaign.decoder_campaign`.

    Bit-identical records, one netlist traversal per simulated fault
    (class representatives when ``collapse``), ``workers=N`` shards the
    representative list over a process pool, ``chunk=W`` bounds packed
    lane words to W bits (see :func:`_decoder_worker`).
    """
    from repro.faultsim.campaign import (
        analytic_escapes,
        classify_structural_fault,
    )

    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk must be >= 1 lanes, got {chunk}")

    analytic = analytic_escapes(checked) if attach_analytic else None

    faults = list(faults)
    reps, key_to_group = _fault_groups(checked.circuit, faults, collapse)
    outcomes = _map_jobs(
        _decoder_worker,
        (checked, checker, list(addresses), chunk),
        reps,
        workers,
    )

    result = CampaignResult(
        cycles_simulated=len(addresses), engine="packed"
    )
    for fault in faults:
        first_error, first_detection = outcomes[key_to_group[fault.key()]]
        escape = None
        if analytic is not None and isinstance(fault, NetStuckAt):
            escape = analytic.get(fault.key())
        result.add(
            FaultRecord(
                fault=fault,
                kind=classify_structural_fault(checked, fault),
                first_detection=first_detection,
                first_error=first_error,
                analytic_escape=escape,
            )
        )
    return result


# -- scheme campaigns --------------------------------------------------------


class _SchemeCampaignState:
    """Golden context shared by every fault of one scheme campaign.

    Built lazily: memory-fault-only campaigns never pack a decoder, and
    the fault-free indication words cost one behavioural read per
    *distinct* address, once for the whole campaign.
    """

    def __init__(self, memory: SelfCheckingMemory, addresses: Sequence[int]):
        self.memory = memory
        self.addresses = list(addresses)
        org = memory.organization
        self.rows = [org.split_address(a)[0] for a in self.addresses]
        self.cols = [org.split_address(a)[1] for a in self.addresses]
        self._streams: Dict[str, PackedStream] = {}
        self._ff_rejects: Optional[Tuple[int, int, int]] = None

    def stream(self, axis: str) -> PackedStream:
        if axis not in self._streams:
            checked = self.memory.row if axis == "row" else self.memory.column
            values = self.rows if axis == "row" else self.cols
            self._streams[axis] = PackedStream(checked, values)
        return self._streams[axis]

    def fault_free_rejects(self) -> Tuple[int, int, int]:
        """(row, column, parity) fault-free rejection lane-words.

        Bit ``k`` set iff the fault-free read of cycle ``k``'s address
        fails that checker — non-zero only for exotic writers, but kept
        exact so packed == serial under *any* memory preparation.
        """
        if self._ff_rejects is None:
            self.memory.clear_faults()
            flags: Dict[int, Tuple[bool, bool, bool]] = {}
            row_rej = col_rej = par_rej = 0
            for lane, address in enumerate(self.addresses):
                f = flags.get(address)
                if f is None:
                    r = self.memory.read(address)
                    f = (r.row_ok, r.column_ok, r.parity_ok)
                    flags[address] = f
                bit = 1 << lane
                if not f[0]:
                    row_rej |= bit
                if not f[1]:
                    col_rej |= bit
                if not f[2]:
                    par_rej |= bit
            self._ff_rejects = (row_rej, col_rej, par_rej)
        return self._ff_rejects


def _axis_fault_detection(
    state: _SchemeCampaignState, axis: str, fault: FaultBase
) -> Optional[int]:
    """First detection cycle of one structural fault on one decoder axis.

    One packed traversal of the faulted axis gives the axis-checker
    rejection word and the wrong-selection (``err``) word; the other
    axis and the parity path are fault-free except on ``err`` lanes,
    where the data path is resolved by memoised behavioural reads — and
    only for lanes preceding the first already-known detection.
    """
    memory = state.memory
    checker = memory.row_checker if axis == "row" else memory.column_checker
    stream = state.stream(axis)
    row_ff, col_ff, parity_ff = state.fault_free_rejects()
    other_reject = col_ff if axis == "row" else row_ff

    err, acc = stream.observe_fault(fault, checker)
    known = (~acc & stream.mask) | other_reject | (parity_ff & ~err)
    first = first_set_lane(known)

    pending = err if first is None else err & ((1 << first) - 1)
    if pending:
        memory.clear_faults()
        if axis == "row":
            memory.inject_row_fault(fault)
        else:
            memory.inject_column_fault(fault)
        seen: Dict[int, bool] = {}
        while pending:
            lane = (pending & -pending).bit_length() - 1
            address = state.addresses[lane]
            detected = seen.get(address)
            if detected is None:
                detected = memory.read(address).error_detected
                seen[address] = detected
            if detected:
                first = lane
                break
            pending &= pending - 1
        memory.clear_faults()
    return first


def _memory_fault_detection(
    state: _SchemeCampaignState, fault
) -> Optional[int]:
    """First detection of a behavioural fault: reads are pure, so the
    verdict is memoised per distinct address instead of re-read per
    cycle."""
    memory = state.memory
    memory.clear_faults()
    memory.inject_memory_fault(fault)
    first: Optional[int] = None
    seen: Dict[int, bool] = {}
    for lane, address in enumerate(state.addresses):
        detected = seen.get(address)
        if detected is None:
            detected = memory.read(address).error_detected
            seen[address] = detected
        if detected:
            first = lane
            break
    memory.clear_faults()
    return first


def _scheme_worker(payload):
    (memory, addresses), jobs = payload
    state = _SchemeCampaignState(memory, addresses)
    out = []
    for axis, fault in jobs:
        if axis == "memory":
            out.append(_memory_fault_detection(state, fault))
        else:
            out.append(_axis_fault_detection(state, axis, fault))
    return out


def scheme_campaign_packed(
    memory: SelfCheckingMemory,
    addresses: Sequence[int],
    row_faults: Sequence[FaultBase] = (),
    column_faults: Sequence[FaultBase] = (),
    memory_faults: Sequence = (),
    writer=None,
    collapse: bool = True,
    workers: Optional[int] = None,
) -> CampaignResult:
    """Packed counterpart of :func:`repro.faultsim.campaign.scheme_campaign`.

    Structural row/column faults are collapsed per axis and simulated
    with one packed traversal each; behavioural memory faults use
    address-memoised reads.  Bit-identical to the serial oracle.
    """
    from repro.faultsim.campaign import (
        classify_structural_fault,
        default_scheme_writer,
    )

    fill = writer or default_scheme_writer
    fill(memory)

    row_faults = list(row_faults)
    column_faults = list(column_faults)
    memory_faults = list(memory_faults)
    row_reps, row_groups = _fault_groups(
        memory.row.circuit, row_faults, collapse
    )
    col_reps, col_groups = _fault_groups(
        memory.column.circuit, column_faults, collapse
    )

    jobs = (
        [("row", f) for f in row_reps]
        + [("column", f) for f in col_reps]
        + [("memory", f) for f in memory_faults]
    )
    memory.clear_faults()
    outcomes = _map_jobs(
        _scheme_worker, (memory, list(addresses)), jobs, workers
    )
    row_out = outcomes[: len(row_reps)]
    col_out = outcomes[len(row_reps) : len(row_reps) + len(col_reps)]
    mem_out = outcomes[len(row_reps) + len(col_reps) :]

    result = CampaignResult(
        cycles_simulated=len(addresses), engine="packed"
    )
    for fault in row_faults:
        result.add(
            FaultRecord(
                fault=fault,
                kind=classify_structural_fault(memory.row, fault),
                first_detection=row_out[row_groups[fault.key()]],
            )
        )
    for fault in column_faults:
        result.add(
            FaultRecord(
                fault=fault,
                kind=classify_structural_fault(memory.column, fault),
                first_detection=col_out[col_groups[fault.key()]],
            )
        )
    for fault, first in zip(memory_faults, mem_out):
        result.add(
            FaultRecord(fault=fault, kind="memory", first_detection=first)
        )
    return result
