"""Monte-Carlo fault-injection campaigns and their result statistics.

Campaigns run on one of two engines (``engine=`` on the drivers):
``"packed"`` — the default bit-parallel engine of
:mod:`repro.faultsim.fastsim`, one netlist traversal per fault with
structural fault collapsing and optional ``workers=N`` process-pool
sharding — or ``"serial"``, the per-cycle reference oracle the packed
engine is proven bit-identical against.
"""

from repro.faultsim.campaign import (
    classify_structural_fault,
    decoder_campaign,
    default_scheme_writer,
    scheme_campaign,
)
from repro.faultsim.fastsim import (
    decoder_campaign_packed,
    scheme_campaign_packed,
)
from repro.faultsim.injector import (
    burst_addresses,
    decoder_fault_list,
    random_addresses,
    rom_fault_list,
    sample_faults,
    sequential_addresses,
)
from repro.faultsim.results import CampaignResult, FaultRecord
from repro.faultsim.transient import (
    TransientResult,
    TransientUpset,
    scrubbed_stream,
    transient_campaign,
)

__all__ = [
    "TransientUpset",
    "TransientResult",
    "transient_campaign",
    "scrubbed_stream",
    "decoder_campaign",
    "decoder_campaign_packed",
    "scheme_campaign",
    "scheme_campaign_packed",
    "classify_structural_fault",
    "default_scheme_writer",
    "random_addresses",
    "sequential_addresses",
    "burst_addresses",
    "decoder_fault_list",
    "rom_fault_list",
    "sample_faults",
    "CampaignResult",
    "FaultRecord",
]
