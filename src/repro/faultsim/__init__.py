"""Monte-Carlo fault-injection campaigns and their result statistics.

Campaigns run on one of three engines (``engine=`` on the drivers):
``"packed"`` — the default bit-parallel engine of
:mod:`repro.faultsim.fastsim`, one netlist traversal per fault with
structural fault collapsing and optional ``workers=N`` process-pool
sharding; ``"vector"`` — the NumPy lane-array engine of
:mod:`repro.faultsim.vectorsim`, which packs the fault axis into lanes
too (optional ``repro[vector]`` extra; ``"auto"`` selects it when NumPy
is importable); or ``"serial"``, the per-cycle reference oracle both
fast engines are proven bit-identical against.
"""

from repro.faultsim.campaign import (
    classify_structural_fault,
    decoder_campaign,
    default_scheme_writer,
    scheme_campaign,
)
from repro.faultsim.fastsim import (
    decoder_campaign_packed,
    scheme_campaign_packed,
)
from repro.faultsim.injector import (
    burst_addresses,
    decoder_fault_list,
    random_addresses,
    rom_fault_list,
    sample_faults,
    sequential_addresses,
)
from repro.faultsim.results import CampaignResult, FaultRecord
from repro.faultsim.transient import (
    TransientResult,
    TransientUpset,
    scrubbed_stream,
    transient_campaign,
)
from repro.faultsim.vectorsim import (
    CAMPAIGN_ENGINES,
    decoder_campaign_vector,
    numpy_available,
    resolve_engine,
    scheme_campaign_vector,
)

__all__ = [
    "TransientUpset",
    "TransientResult",
    "transient_campaign",
    "scrubbed_stream",
    "CAMPAIGN_ENGINES",
    "numpy_available",
    "resolve_engine",
    "decoder_campaign",
    "decoder_campaign_packed",
    "decoder_campaign_vector",
    "scheme_campaign",
    "scheme_campaign_packed",
    "scheme_campaign_vector",
    "classify_structural_fault",
    "default_scheme_writer",
    "random_addresses",
    "sequential_addresses",
    "burst_addresses",
    "decoder_fault_list",
    "rom_fault_list",
    "sample_faults",
    "CampaignResult",
    "FaultRecord",
]
