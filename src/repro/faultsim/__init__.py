"""Monte-Carlo fault-injection campaigns and their result statistics."""

from repro.faultsim.campaign import (
    classify_structural_fault,
    decoder_campaign,
    scheme_campaign,
)
from repro.faultsim.injector import (
    burst_addresses,
    decoder_fault_list,
    random_addresses,
    rom_fault_list,
    sample_faults,
    sequential_addresses,
)
from repro.faultsim.results import CampaignResult, FaultRecord
from repro.faultsim.transient import (
    TransientResult,
    TransientUpset,
    scrubbed_stream,
    transient_campaign,
)

__all__ = [
    "TransientUpset",
    "TransientResult",
    "transient_campaign",
    "scrubbed_stream",
    "decoder_campaign",
    "scheme_campaign",
    "classify_structural_fault",
    "random_addresses",
    "sequential_addresses",
    "burst_addresses",
    "decoder_fault_list",
    "rom_fault_list",
    "sample_faults",
    "CampaignResult",
    "FaultRecord",
]
