"""Result containers and statistics for fault-injection campaigns."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["FaultRecord", "CampaignResult"]


@dataclass
class FaultRecord:
    """Outcome of simulating one fault against one address stream."""

    #: printable fault identity
    fault: object
    #: 'sa0' | 'sa1' | 'address' | 'memory' | 'rom'
    kind: str
    #: cycle (0-based) of first detection; None = never detected
    first_detection: Optional[int]
    #: cycle of the first *error* at the observed outputs; None = never excited
    first_error: Optional[int] = None
    #: analytic per-cycle escape probability, when available
    analytic_escape: Optional[float] = None

    @property
    def detected(self) -> bool:
        return self.first_detection is not None

    @property
    def latency(self) -> Optional[int]:
        """Cycles from first error to detection (0 = caught immediately)."""
        if self.first_detection is None or self.first_error is None:
            return None
        return self.first_detection - self.first_error


@dataclass
class CampaignResult:
    """Aggregate over a fault list."""

    records: List[FaultRecord] = field(default_factory=list)
    cycles_simulated: int = 0
    #: which engine produced the records ('serial' | 'packed');
    #: None for hand-assembled results
    engine: Optional[str] = None

    def add(self, record: FaultRecord) -> None:
        self.records.append(record)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def detected(self) -> int:
        return sum(1 for r in self.records if r.detected)

    @property
    def coverage(self) -> float:
        return self.detected / self.total if self.records else 1.0

    def undetected(self) -> List[FaultRecord]:
        return [r for r in self.records if not r.detected]

    def detection_cycles(self) -> List[int]:
        return [
            r.first_detection for r in self.records if r.detected
        ]

    def mean_detection_cycle(self) -> float:
        cycles = self.detection_cycles()
        return sum(cycles) / len(cycles) if cycles else math.nan

    def max_detection_cycle(self) -> Optional[int]:
        cycles = self.detection_cycles()
        return max(cycles) if cycles else None

    def detected_within(self, c: int) -> int:
        """Faults detected within the first ``c`` cycles (cycle < c)."""
        return sum(
            1
            for r in self.records
            if r.detected and r.first_detection < c
        )

    def escape_fraction_at(self, c: int) -> float:
        """Fraction of faults still undetected after ``c`` cycles —
        the empirical counterpart of the paper's ``Pndc`` (averaged over
        the fault list rather than the worst site)."""
        if not self.records:
            return 0.0
        return 1.0 - self.detected_within(c) / self.total

    def latency_histogram(self, bins: Optional[List[int]] = None) -> Dict[str, int]:
        """Counts of first-detection cycles in ranges (for the figures)."""
        if bins is None:
            bins = [1, 2, 5, 10, 20, 50, 100]
        edges = [0] + sorted(bins)
        hist: Dict[str, int] = {}
        for lo, hi in zip(edges, edges[1:]):
            label = f"[{lo},{hi})"
            hist[label] = sum(
                1
                for r in self.records
                if r.detected and lo <= r.first_detection < hi
            )
        last = edges[-1]
        hist[f"[{last},inf)"] = sum(
            1
            for r in self.records
            if r.detected and r.first_detection >= last
        )
        hist["undetected"] = self.total - self.detected
        return hist

    def by_kind(self) -> Dict[str, "CampaignResult"]:
        out: Dict[str, CampaignResult] = {}
        for record in self.records:
            out.setdefault(
                record.kind,
                CampaignResult(
                    cycles_simulated=self.cycles_simulated,
                    engine=self.engine,
                ),
            ).add(record)
        return out

    def summary(self) -> Dict[str, object]:
        return {
            "faults": self.total,
            "detected": self.detected,
            "coverage": round(self.coverage, 6),
            "mean_detection_cycle": self.mean_detection_cycle(),
            "max_detection_cycle": self.max_detection_cycle(),
            "cycles_simulated": self.cycles_simulated,
            "engine": self.engine,
        }
