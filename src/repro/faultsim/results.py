"""Result containers and statistics for fault-injection campaigns.

Since 1.4 the statistics live once in
:class:`repro.results.stats.RecordStatistics`, shared with the
serialisable :class:`repro.results.ResultSet`; :class:`CampaignResult`
is the thin in-memory compatibility view (live fault objects, mutable
``add``) the pre-1.4 API exposed — convert with
:meth:`CampaignResult.to_result_set` / ``ResultSet.to_campaign()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.results.stats import RecordStatistics

__all__ = ["FaultRecord", "CampaignResult"]


@dataclass
class FaultRecord:
    """Outcome of simulating one fault against one address stream."""

    #: printable fault identity (a live fault/scenario object on fresh
    #: runs; its printable string on results served from a ResultStore)
    fault: object
    #: 'sa0' | 'sa1' | 'address' | 'memory' | 'rom' | 'transient' | ...
    kind: str
    #: cycle (0-based) of first detection; None = never detected
    first_detection: Optional[int]
    #: cycle of the first *error* at the observed outputs; None = never excited
    first_error: Optional[int] = None
    #: analytic per-cycle escape probability, when available
    analytic_escape: Optional[float] = None

    @property
    def detected(self) -> bool:
        return self.first_detection is not None

    @property
    def latency(self) -> Optional[int]:
        """Cycles from first error to detection (0 = caught immediately)."""
        if self.first_detection is None or self.first_error is None:
            return None
        return self.first_detection - self.first_error


@dataclass
class CampaignResult(RecordStatistics):
    """Aggregate over a fault list (statistics from ``RecordStatistics``)."""

    records: List[FaultRecord] = field(default_factory=list)
    cycles_simulated: int = 0
    #: which engine produced the records ('serial' | 'packed');
    #: None for hand-assembled results
    engine: Optional[str] = None
    #: stamped by CampaignEngine runs (1.4+): what produced the records
    provenance: Optional[object] = None
    #: content-addressed store key, when the campaign was keyed
    store_key: Optional[str] = None
    #: True when the records were served from a ResultStore (fault
    #: identities are strings on that path, not live objects)
    from_store: bool = False

    def add(self, record: FaultRecord) -> None:
        self.records.append(record)

    def _spawn(self) -> "CampaignResult":
        return CampaignResult(
            cycles_simulated=self.cycles_simulated,
            engine=self.engine,
            provenance=self.provenance,
            store_key=self.store_key,
            from_store=self.from_store,
        )

    def to_result_set(self, provenance=None):
        """The serialisable, provenance-stamped 1.4 artifact view."""
        from repro.results import ResultSet

        return ResultSet.from_campaign(
            self, provenance=provenance or self.provenance
        )
