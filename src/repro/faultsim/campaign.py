"""Fault-injection campaigns: measure detection latency empirically.

Two levels of campaign:

* :func:`decoder_campaign` — the §III experiment: stuck-at faults in the
  decoder tree (and optionally the ROM), concurrent detection judged by
  the q-out-of-r checker on the ROM outputs, one address per cycle;
* :func:`scheme_campaign` — end-to-end on a
  :class:`~repro.core.scheme.SelfCheckingMemory`: any fault kind, all
  three checkers observed, reads drawn from an address stream.

Both return :class:`~repro.faultsim.results.CampaignResult`, whose
``escape_fraction_at(c)`` is the empirical counterpart of the analytic
``Pndc`` — the X2 bench overlays the two.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.checkers.base import Checker
from repro.circuits.faults import FaultBase, NetStuckAt
from repro.core.scheme import SelfCheckingMemory
from repro.decoder.analysis import analyze_decoder
from repro.faultsim.results import CampaignResult, FaultRecord
from repro.memory.faults import MemoryFault
from repro.rom.nor_matrix import CheckedDecoder

__all__ = [
    "decoder_campaign",
    "scheme_campaign",
    "classify_structural_fault",
]


def classify_structural_fault(
    checked: CheckedDecoder, fault: FaultBase
) -> str:
    """'sa0'/'sa1' for tree faults, 'rom' for NOR-matrix faults.

    Primary-input nets are checked first: the direct literal of a level-0
    block shares its net with the address input, and a *stem* fault there
    re-decodes a consistent wrong address — an out-of-model address fault,
    not a block fault.
    """
    if isinstance(fault, NetStuckAt):
        if fault.net in checked.tree.circuit.input_nets:
            return "address"
        if fault.net in checked.rom_nets:
            return "rom"
        site = checked.tree.site_of_net(fault.net)
        if site is None:
            return "address"
        return "sa0" if fault.value == 0 else "sa1"
    return "pin"


def decoder_campaign(
    checked: CheckedDecoder,
    checker: Checker,
    faults: Sequence[FaultBase],
    addresses: Sequence[int],
    attach_analytic: bool = True,
) -> CampaignResult:
    """Simulate each fault against the address stream.

    Per cycle: apply the address, read the ROM word, ask the checker.
    ``first_error`` is recorded at the **word lines** (the first cycle the
    selected-line vector is wrong), because that is when the memory
    delivers corrupt data — a merge of two lines carrying the *same* code
    word corrupts data while leaving the ROM word legal, which is exactly
    the escape the paper's model quantifies.  The latency (detection
    minus first error) then makes the paper's "zero detection latency"
    claims checkable as ``latency == 0``.
    """
    analytic = None
    if attach_analytic:
        analytic = {}
        analysis = analyze_decoder(checked.tree, checked.mapping)
        for site in analysis.sites:
            if site.escape_per_cycle is not None:
                analytic[site.fault.key()] = float(site.escape_per_cycle)

    num_lines = 1 << checked.n
    one_hot = [
        tuple(1 if line == a else 0 for line in range(num_lines))
        for a in range(num_lines)
    ]
    result = CampaignResult(cycles_simulated=len(addresses))
    for fault in faults:
        kind = classify_structural_fault(checked, fault)
        first_error: Optional[int] = None
        first_detection: Optional[int] = None
        for cycle, address in enumerate(addresses):
            lines, rom_word = checked.evaluate(address, faults=(fault,))
            if first_error is None and lines != one_hot[address]:
                first_error = cycle
            if not checker.accepts(rom_word):
                first_detection = cycle
                break
        escape = None
        if analytic is not None and isinstance(fault, NetStuckAt):
            escape = analytic.get(fault.key())
        result.add(
            FaultRecord(
                fault=fault,
                kind=kind,
                first_detection=first_detection,
                first_error=first_error,
                analytic_escape=escape,
            )
        )
    return result


def scheme_campaign(
    memory: SelfCheckingMemory,
    addresses: Sequence[int],
    row_faults: Iterable[FaultBase] = (),
    column_faults: Iterable[FaultBase] = (),
    memory_faults: Iterable[MemoryFault] = (),
    writer: Optional[Callable[[SelfCheckingMemory], None]] = None,
) -> CampaignResult:
    """End-to-end campaign on the assembled scheme.

    ``writer`` initialises memory contents before each fault run (default:
    address-dependent pattern so decoder aliasing is observable in the
    data path too).
    """

    def default_writer(mem: SelfCheckingMemory) -> None:
        # Address-dependent mixing pattern: distinct rows hold distinct
        # words, so aliased reads disturb the data path observably.
        bits = mem.organization.bits
        for address in range(mem.organization.words):
            pattern = tuple(
                ((address * 0x9E3779B1) >> i) & 1 for i in range(bits)
            )
            mem.write(address, pattern)

    fill = writer or default_writer
    fill(memory)

    result = CampaignResult(cycles_simulated=len(addresses))

    def run_one(fault, kind: str, inject: Callable[[], None]) -> None:
        memory.clear_faults()
        inject()
        first_detection: Optional[int] = None
        for cycle, address in enumerate(addresses):
            if memory.read(address).error_detected:
                first_detection = cycle
                break
        result.add(
            FaultRecord(
                fault=fault,
                kind=kind,
                first_detection=first_detection,
            )
        )
        memory.clear_faults()

    for fault in row_faults:
        kind = classify_structural_fault(memory.row, fault)
        run_one(fault, kind, lambda f=fault: memory.inject_row_fault(f))
    for fault in column_faults:
        kind = classify_structural_fault(memory.column, fault)
        run_one(fault, kind, lambda f=fault: memory.inject_column_fault(f))
    for fault in memory_faults:
        run_one(fault, "memory", lambda f=fault: memory.inject_memory_fault(f))
    return result
