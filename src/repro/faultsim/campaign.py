"""Fault-injection campaigns: measure detection latency empirically.

Two levels of campaign:

* :func:`decoder_campaign` — the §III experiment: stuck-at faults in the
  decoder tree (and optionally the ROM), concurrent detection judged by
  the q-out-of-r checker on the ROM outputs, one address per cycle;
* :func:`scheme_campaign` — end-to-end on a
  :class:`~repro.core.scheme.SelfCheckingMemory`: any fault kind, all
  three checkers observed, reads drawn from an address stream.

Both return :class:`~repro.faultsim.results.CampaignResult`, whose
``escape_fraction_at(c)`` is the empirical counterpart of the analytic
``Pndc`` — the X2 bench overlays the two.

Three engines drive each campaign, selected with ``engine=``:

* ``"packed"`` (default) — the bit-parallel PPSFP-style engine of
  :mod:`repro.faultsim.fastsim`: one packed netlist traversal per
  simulated fault, collapsing on by default, optional ``workers=N``
  process pool;
* ``"vector"`` — the NumPy lane-array engine of
  :mod:`repro.faultsim.vectorsim`: the fault axis is packed into lanes
  too, so the whole campaign is evaluated in a handful of array ops
  (requires the optional ``repro[vector]`` extra);
* ``"serial"`` — the original per-cycle loops below, kept as the
  reference oracle both fast engines are proven bit-identical against.

``engine="auto"`` picks ``"vector"`` when NumPy is importable and falls
back to ``"packed"`` otherwise.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.checkers.base import Checker
from repro.circuits.faults import FaultBase, NetStuckAt
from repro.core.scheme import SelfCheckingMemory
from repro.decoder.analysis import analyze_decoder
from repro.faultsim.results import CampaignResult, FaultRecord
from repro.faultsim.vectorsim import resolve_engine
from repro.memory.faults import MemoryFault
from repro.rom.nor_matrix import CheckedDecoder

__all__ = [
    "decoder_campaign",
    "scheme_campaign",
    "classify_structural_fault",
    "default_scheme_writer",
    "analytic_escapes",
]


def _address_stream(addresses) -> List[int]:
    """Materialise a stimulus: a 1.3 ``Workload`` or a bare sequence."""
    if hasattr(addresses, "address_list"):
        return addresses.address_list()
    return list(addresses)


def classify_structural_fault(
    checked: CheckedDecoder, fault: FaultBase
) -> str:
    """'sa0'/'sa1' for tree faults, 'rom' for NOR-matrix faults.

    Primary-input nets are checked first: the direct literal of a level-0
    block shares its net with the address input, and a *stem* fault there
    re-decodes a consistent wrong address — an out-of-model address fault,
    not a block fault.
    """
    if isinstance(fault, NetStuckAt):
        if fault.net in checked.tree.circuit.input_nets:
            return "address"
        if fault.net in checked.rom_nets:
            return "rom"
        site = checked.tree.site_of_net(fault.net)
        if site is None:
            return "address"
        return "sa0" if fault.value == 0 else "sa1"
    return "pin"


def analytic_escapes(checked: CheckedDecoder) -> dict:
    """fault key -> per-cycle escape from the §III.2 site analysis.

    The one attachment table both campaign engines draw from, so the
    serial oracle and the packed engine can never diverge on analytic
    data.
    """
    analysis = analyze_decoder(checked.tree, checked.mapping)
    return {
        site.fault.key(): float(site.escape_per_cycle)
        for site in analysis.sites
        if site.escape_per_cycle is not None
    }


def decoder_campaign(
    checked: CheckedDecoder,
    checker: Checker,
    faults: Sequence[FaultBase],
    addresses: Union[Sequence[int], "object"],
    attach_analytic: bool = True,
    engine: str = "packed",
    collapse: bool = True,
    workers: Optional[int] = None,
    chunk: Optional[int] = None,
) -> CampaignResult:
    """Simulate each fault against the address stream.

    Per cycle: apply the address, read the ROM word, ask the checker.
    ``first_error`` is recorded at the **word lines** (the first cycle the
    selected-line vector is wrong), because that is when the memory
    delivers corrupt data — a merge of two lines carrying the *same* code
    word corrupts data while leaving the ROM word legal, which is exactly
    the escape the paper's model quantifies.  The latency (detection
    minus first error) then makes the paper's "zero detection latency"
    claims checkable as ``latency == 0``.

    ``addresses`` may be a bare address sequence or any
    :class:`repro.scenarios.Workload` (its address-per-cycle view is
    used).  ``engine="packed"`` (default) simulates the whole stream in
    one netlist traversal per fault with collapsing (``collapse=False``
    disables it), optional process-pool sharding (``workers=N``) and
    optional bounded-memory lane windows (``chunk=W``; results
    invariant in W); ``engine="vector"`` additionally packs the fault
    axis into NumPy lanes (``repro[vector]``; ``"auto"`` selects it
    when NumPy is importable); ``engine="serial"`` runs the per-cycle
    reference loop.
    """
    engine = resolve_engine(engine)
    addresses = _address_stream(addresses)
    if engine == "vector":
        from repro.faultsim.vectorsim import decoder_campaign_vector

        return decoder_campaign_vector(
            checked,
            checker,
            faults,
            addresses,
            attach_analytic=attach_analytic,
            collapse=collapse,
            workers=workers,
            chunk=chunk,
        )
    if engine == "packed":
        from repro.faultsim.fastsim import decoder_campaign_packed

        return decoder_campaign_packed(
            checked,
            checker,
            faults,
            addresses,
            attach_analytic=attach_analytic,
            collapse=collapse,
            workers=workers,
            chunk=chunk,
        )

    analytic = analytic_escapes(checked) if attach_analytic else None

    result = CampaignResult(
        cycles_simulated=len(addresses), engine="serial"
    )
    for fault in faults:
        kind = classify_structural_fault(checked, fault)
        first_error: Optional[int] = None
        first_detection: Optional[int] = None
        for cycle, address in enumerate(addresses):
            lines, rom_word = checked.evaluate(address, faults=(fault,))
            # correct selection = exactly the addressed line active
            if first_error is None and (
                lines[address] != 1 or sum(lines) != 1
            ):
                first_error = cycle
            if not checker.accepts(rom_word):
                first_detection = cycle
                break
        escape = None
        if analytic is not None and isinstance(fault, NetStuckAt):
            escape = analytic.get(fault.key())
        result.add(
            FaultRecord(
                fault=fault,
                kind=kind,
                first_detection=first_detection,
                first_error=first_error,
                analytic_escape=escape,
            )
        )
    return result


def default_scheme_writer(memory: SelfCheckingMemory) -> None:
    """Address-dependent mixing pattern: distinct rows hold distinct
    words, so aliased reads disturb the data path observably."""
    bits = memory.organization.bits
    for address in range(memory.organization.words):
        pattern = tuple(
            ((address * 0x9E3779B1) >> i) & 1 for i in range(bits)
        )
        memory.write(address, pattern)


def scheme_campaign(
    memory: SelfCheckingMemory,
    addresses: Union[Sequence[int], "object"],
    row_faults: Iterable[FaultBase] = (),
    column_faults: Iterable[FaultBase] = (),
    memory_faults: Iterable[MemoryFault] = (),
    writer: Optional[Callable[[SelfCheckingMemory], None]] = None,
    engine: str = "packed",
    collapse: bool = True,
    workers: Optional[int] = None,
    chunk: Optional[int] = None,
) -> CampaignResult:
    """End-to-end campaign on the assembled scheme.

    ``writer`` initialises memory contents before each fault run (default:
    :func:`default_scheme_writer`, an address-dependent pattern so decoder
    aliasing is observable in the data path too).

    ``engine``/``collapse``/``workers`` select a fast path as in
    :func:`decoder_campaign` (``"vector"`` evaluates the whole collapsed
    fault list per cycle window in one NumPy traversal and honours
    ``chunk=W`` bounded-memory windows); ``engine="serial"`` is the
    per-cycle reference oracle.  ``addresses`` accepts a bare sequence
    or a :class:`repro.scenarios.Workload`.
    """
    engine = resolve_engine(engine)
    addresses = _address_stream(addresses)
    if engine == "vector":
        from repro.faultsim.vectorsim import scheme_campaign_vector

        return scheme_campaign_vector(
            memory,
            addresses,
            row_faults=row_faults,
            column_faults=column_faults,
            memory_faults=memory_faults,
            writer=writer,
            collapse=collapse,
            workers=workers,
            chunk=chunk,
        )
    if engine == "packed":
        from repro.faultsim.fastsim import scheme_campaign_packed

        return scheme_campaign_packed(
            memory,
            addresses,
            row_faults=row_faults,
            column_faults=column_faults,
            memory_faults=memory_faults,
            writer=writer,
            collapse=collapse,
            workers=workers,
        )

    fill = writer or default_scheme_writer
    fill(memory)

    result = CampaignResult(
        cycles_simulated=len(addresses), engine="serial"
    )

    def run_one(fault, kind: str, inject: Callable[[], None]) -> None:
        memory.clear_faults()
        inject()
        first_detection: Optional[int] = None
        for cycle, address in enumerate(addresses):
            if memory.read(address).error_detected:
                first_detection = cycle
                break
        result.add(
            FaultRecord(
                fault=fault,
                kind=kind,
                first_detection=first_detection,
            )
        )
        memory.clear_faults()

    for fault in row_faults:
        kind = classify_structural_fault(memory.row, fault)
        run_one(fault, kind, lambda f=fault: memory.inject_row_fault(f))
    for fault in column_faults:
        kind = classify_structural_fault(memory.column, fault)
        run_one(fault, kind, lambda f=fault: memory.inject_column_fault(f))
    for fault in memory_faults:
        run_one(fault, "memory", lambda f=fault: memory.inject_memory_fault(f))
    return result
