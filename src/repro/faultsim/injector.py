"""Stimulus generation and fault-list construction for campaigns.

The address-stream helpers are thin shims over the 1.3
:class:`repro.scenarios.Workload` vocabulary (bit-identical traces);
new code should build workloads directly — they compose, serialise and
chunk-iterate, which bare lists cannot.
"""

from __future__ import annotations

import random
import warnings
from typing import List, Optional, Sequence

from repro.circuits.faults import FaultBase, NetStuckAt
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios.workload import Workload

__all__ = [
    "random_addresses",
    "sequential_addresses",
    "burst_addresses",
    "decoder_fault_list",
    "rom_fault_list",
    "sample_faults",
]


def random_addresses(
    n_bits: int, cycles: int, seed: int = 0
) -> List[int]:
    """Uniform i.i.d. address stream — the paper's latency model's regime.

    .. deprecated:: 1.4
        Shim over ``Workload.uniform(1 << n_bits, cycles, seed)``
        (bit-identical trace); ``Workload`` has been canonical since
        1.3 — construct it directly (it composes, serialises and
        chunk-iterates, which bare lists cannot).
    """
    warnings.warn(
        "random_addresses() is a 1.2-era shim; build "
        "Workload.uniform(1 << n_bits, cycles, seed=seed) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return Workload.uniform(1 << n_bits, cycles, seed=seed).address_list()


def sequential_addresses(n_bits: int, cycles: int, start: int = 0) -> List[int]:
    """Linear sweep (wrapping) — a marching access pattern.

    Shim over ``Workload.sequential(1 << n_bits, cycles, start)``.
    """
    return Workload.sequential(
        1 << n_bits, cycles, start=start
    ).address_list()


def burst_addresses(
    n_bits: int,
    cycles: int,
    locality: int = 8,
    seed: int = 0,
) -> List[int]:
    """Bursty stream: short sequential runs at random bases (cache-like).

    Stresses the latency model's uniformity assumption — the empirical
    benches show detection slows when traffic never leaves a region whose
    addresses share a residue class.  Shim over ``Workload.bursty``.
    """
    return Workload.bursty(
        1 << n_bits, cycles, locality=locality, seed=seed
    ).address_list()


def decoder_fault_list(
    checked: CheckedDecoder, include_inputs: bool = False
) -> List[FaultBase]:
    """Stuck-at faults on every gate output of the decoder *tree* only.

    ROM faults are enumerated separately (:func:`rom_fault_list`) since
    the paper's analysis targets decoder faults; address-input stems are
    excluded by default (out of the scheme's fault model — see
    :mod:`repro.decoder.analysis`).
    """
    faults: List[FaultBase] = []
    if include_inputs:
        for net in checked.tree.circuit.input_nets:
            for value in (0, 1):
                faults.append(NetStuckAt(net, value))
    for gate in checked.tree.circuit.gates:
        for value in (0, 1):
            faults.append(NetStuckAt(gate.output, value))
    return faults


def rom_fault_list(checked: CheckedDecoder) -> List[FaultBase]:
    """Stuck-at faults on the NOR-matrix output nets.

    A ROM output stuck-at flips one bit of every emitted word — caught by
    the m-out-of-n checker whenever the programmed bit differs (the word
    weight goes off-m), which the X3 bench quantifies.
    """
    faults: List[FaultBase] = []
    for net in checked.rom_nets:
        for value in (0, 1):
            faults.append(NetStuckAt(net, value))
    return faults


def sample_faults(
    faults: Sequence[FaultBase], count: Optional[int], seed: int = 0
) -> List[FaultBase]:
    """Deterministic sub-sample for time-boxed campaigns (None = all)."""
    if count is None or count >= len(faults):
        return list(faults)
    rng = random.Random(seed)
    return rng.sample(list(faults), count)
