"""Transient (soft-error) fault campaigns — the on-line-testing motivation.

The paper's introduction frames self-checking as *on-line* reliability:
faults appear during operation.  Beyond the permanent stuck-at model of
§III we add single-event upsets — a stored bit flips at some cycle — and
measure how long the parity path takes to observe them under a given
access pattern.  The detection latency here is governed by the *traffic*,
not the code: parity catches the flip on the first read of the victim
word, so latency = time-to-next-read, which the campaign quantifies for
uniform, sequential and scrubbed access streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.memory.ram import BehavioralRAM

__all__ = [
    "TransientUpset",
    "TransientResult",
    "transient_campaign",
    "scrubbed_stream",
]


@dataclass(frozen=True)
class TransientUpset:
    """A single-event upset: bit ``bit`` of ``address`` flips at ``cycle``."""

    address: int
    bit: int
    cycle: int


@dataclass
class TransientResult:
    upset: TransientUpset
    #: cycle at which a read of the victim word flagged the parity error
    detected_at: Optional[int]

    @property
    def latency(self) -> Optional[int]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.upset.cycle


def scrubbed_stream(
    words: int,
    cycles: int,
    scrub_period: int,
    seed: int = 0,
) -> List[int]:
    """Random traffic with a background scrubber visiting one word every
    ``scrub_period`` cycles (round-robin) — bounding time-to-next-read."""
    rng = random.Random(seed)
    stream: List[int] = []
    scrub_ptr = 0
    for cycle in range(cycles):
        if scrub_period > 0 and cycle % scrub_period == 0:
            stream.append(scrub_ptr % words)
            scrub_ptr += 1
        else:
            stream.append(rng.randrange(words))
    return stream


def transient_campaign(
    ram: BehavioralRAM,
    upsets: Sequence[TransientUpset],
    addresses: Sequence[int],
) -> List[TransientResult]:
    """Replay the address stream once per upset, flipping the victim bit
    at the upset cycle and recording the first parity-failing read.

    The RAM must have parity enabled; it is (re)initialised with zero
    words so every stored word is a parity code word.
    """
    if not ram.with_parity:
        raise ValueError("transient campaign needs a parity-protected RAM")
    results: List[TransientResult] = []
    zero = (0,) * ram.organization.bits
    for upset in upsets:
        if not 0 <= upset.address < ram.organization.words:
            raise ValueError(f"upset address {upset.address} out of range")
        for address in range(ram.organization.words):
            ram.write(address, zero)
        detected: Optional[int] = None
        flipped = False
        for cycle, address in enumerate(addresses):
            if cycle >= upset.cycle and not flipped:
                ram.flip_stored_bit(upset.address, upset.bit)
                flipped = True
            word = ram.read(address)
            if address == upset.address and flipped:
                if not ram.parity_code.is_codeword(word):
                    detected = cycle
                    break
        results.append(TransientResult(upset=upset, detected_at=detected))
    return results
