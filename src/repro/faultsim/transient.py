"""Transient (soft-error) fault campaigns — the on-line-testing motivation.

The paper's introduction frames self-checking as *on-line* reliability:
faults appear during operation.  Beyond the permanent stuck-at model of
§III we add single-event upsets — a stored bit flips at some cycle — and
measure how long the parity path takes to observe them under a given
access pattern.  The detection latency here is governed by the *traffic*,
not the code: parity catches the flip on the first read of the victim
word, so latency = time-to-next-read, which the campaign quantifies for
uniform, sequential and scrubbed access streams.

Since 1.3 the canonical driver is
:meth:`repro.scenarios.CampaignEngine.transient` — seeded
:class:`~repro.scenarios.workload.Workload` stimuli,
:class:`~repro.scenarios.faults.TransientScenario` fault values
(including multi-upset combinations), a packed lane-mask backend proven
bit-identical to the serial oracle, and ``workers=N`` sharding.  The
helpers below are kept as thin shims with the pre-1.3 signatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.memory.ram import BehavioralRAM

__all__ = [
    "TransientUpset",
    "TransientResult",
    "transient_campaign",
    "scrubbed_stream",
]


@dataclass(frozen=True)
class TransientUpset:
    """A single-event upset: bit ``bit`` of ``address`` flips at ``cycle``."""

    address: int
    bit: int
    cycle: int


@dataclass
class TransientResult:
    upset: TransientUpset
    #: cycle at which a read of the victim word flagged the parity error
    detected_at: Optional[int]

    @property
    def latency(self) -> Optional[int]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.upset.cycle


def scrubbed_stream(
    words: int,
    cycles: int,
    scrub_period: int,
    seed: int = 0,
) -> List[int]:
    """Random traffic with a background scrubber visiting one word every
    ``scrub_period`` cycles (round-robin) — bounding time-to-next-read.

    .. deprecated:: 1.4
        Shim over ``Workload.scrubbed`` (bit-identical trace);
        ``Workload`` has been canonical since 1.3 — construct it
        directly.
    """
    import warnings

    warnings.warn(
        "scrubbed_stream() is a 1.2-era shim; build "
        "Workload.scrubbed(words, cycles, scrub_period, seed=seed) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.scenarios.workload import Workload

    return Workload.scrubbed(
        words, cycles, scrub_period=scrub_period, seed=seed
    ).address_list()


def transient_campaign(
    ram: BehavioralRAM,
    upsets: Sequence[TransientUpset],
    addresses: Sequence[int],
    engine: str = "packed",
    workers: Optional[int] = None,
) -> List[TransientResult]:
    """Replay the address stream once per upset, flipping the victim bit
    at the upset cycle and recording the first parity-failing read.

    The RAM must have parity enabled; it is (re)initialised with zero
    words so every stored word is a parity code word.  Shim over
    :meth:`repro.scenarios.CampaignEngine.transient` (one single-upset
    scenario per entry); ``engine="serial"`` selects the per-cycle
    oracle the packed default is proven bit-identical to.

    Behaviour change in 1.3: a RAM with pre-injected behavioural
    faults is refused (``ValueError``) — the packed backend cannot
    honour them.  Clear the faults and model them as scenarios in a
    :meth:`~repro.scenarios.CampaignEngine.scheme` or
    :meth:`~repro.scenarios.CampaignEngine.march` campaign instead.
    """
    from repro.scenarios.engine import CampaignEngine
    from repro.scenarios.faults import TransientScenario
    from repro.scenarios.workload import as_workload

    scenarios = [TransientScenario(upsets=(upset,)) for upset in upsets]
    result = CampaignEngine(engine=engine, workers=workers).transient(
        ram, scenarios, as_workload(addresses)
    )
    return [
        TransientResult(upset=upset, detected_at=record.first_detection)
        for upset, record in zip(upsets, result.records)
    ]
